//===- tests/serve/ChannelAllocatorTest.cpp - Allocator unit tests -*-C++-*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "runtime/ChannelAllocator.h"

using namespace pf;

namespace {

TEST(ChannelAllocatorTest, FullGrantTakesLowestFreeChannels) {
  ChannelAllocator A(8);
  EXPECT_EQ(A.poolSize(), 8);
  EXPECT_EQ(A.freeCount(), 8);

  auto G = A.tryAcquire(4, 2);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->granted(), 4);
  EXPECT_EQ(G->Wanted, 4);
  EXPECT_FALSE(G->degraded());
  EXPECT_EQ(G->Channels, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(A.freeCount(), 4);
}

TEST(ChannelAllocatorTest, PartialFreeSetYieldsDegradedGrant) {
  ChannelAllocator A(8);
  auto First = A.tryAcquire(6, 1);
  ASSERT_TRUE(First.has_value());
  EXPECT_FALSE(First->degraded());

  // Only {6, 7} left: a 6-channel want with floor 2 gets both, degraded.
  auto Second = A.tryAcquire(6, 2);
  ASSERT_TRUE(Second.has_value());
  EXPECT_TRUE(Second->degraded());
  EXPECT_EQ(Second->granted(), 2);
  EXPECT_EQ(Second->Wanted, 6);
  EXPECT_EQ(Second->Channels, (std::vector<int>{6, 7}));
}

TEST(ChannelAllocatorTest, BelowFloorRefusesInsteadOfGranting) {
  ChannelAllocator A(8);
  auto First = A.tryAcquire(7, 1);
  ASSERT_TRUE(First.has_value());

  // One channel free but the floor is 2: no grant at all.
  EXPECT_FALSE(A.tryAcquire(6, 2).has_value());
  // Floor 0 means "never degrade": with less than the full want free the
  // caller goes to the GPU floor, not to a sub-floor PIM run.
  EXPECT_FALSE(A.tryAcquire(6, 0).has_value());
  // A floor-1 taker still gets the remainder.
  auto Last = A.tryAcquire(6, 1);
  ASSERT_TRUE(Last.has_value());
  EXPECT_EQ(Last->granted(), 1);
}

TEST(ChannelAllocatorTest, ZeroWantGetsAnEmptyFullGrant) {
  ChannelAllocator A(4);
  auto G = A.tryAcquire(0, 0);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->granted(), 0);
  EXPECT_FALSE(G->degraded());
  EXPECT_EQ(A.freeCount(), 4);
}

TEST(ChannelAllocatorTest, ReleaseReturnsChannelsForReuse) {
  ChannelAllocator A(4);
  auto G = A.tryAcquire(4, 1);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(A.freeCount(), 0);

  A.release(*G);
  EXPECT_EQ(A.freeCount(), 4);
  auto Again = A.tryAcquire(4, 1);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->granted(), 4);
}

TEST(ChannelAllocatorTest, DoubleReleaseIsAMisuseDiagnosticNotACrash) {
  ChannelAllocator A(4);
  DiagnosticEngine DE;
  auto G = A.tryAcquire(4, 1);
  ASSERT_TRUE(G.has_value());
  EXPECT_TRUE(A.release(*G, &DE));
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_EQ(A.freeCount(), 4);

  // The second release of the same grant is a runtime.channel-misuse
  // error: reported, skipped, and the free list stays consistent.
  EXPECT_FALSE(A.release(*G, &DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::ChannelMisuse));
  EXPECT_EQ(A.freeCount(), 4);
  // The allocator still works after the misuse.
  auto Again = A.tryAcquire(4, 1);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->granted(), 4);
}

TEST(ChannelAllocatorTest, OutOfPoolReleaseIsAMisuseDiagnostic) {
  ChannelAllocator A(4);
  DiagnosticEngine DE;
  ChannelGrant Forged;
  Forged.Channels = {2, 7}; // 7 is outside the pool, 2 was never granted
  Forged.Wanted = 2;
  EXPECT_FALSE(A.release(Forged, &DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::ChannelMisuse));
  EXPECT_EQ(A.freeCount(), 4);
}

TEST(ChannelAllocatorTest, QuarantineExcludesChannelsFromGrants) {
  ChannelAllocator A(4);
  EXPECT_TRUE(A.quarantine(0));
  EXPECT_TRUE(A.isQuarantined(0));
  EXPECT_EQ(A.quarantinedCount(), 1);
  EXPECT_EQ(A.freeCount(), 3);

  auto G = A.tryAcquire(4, 1);
  ASSERT_TRUE(G.has_value());
  EXPECT_TRUE(G->degraded());
  EXPECT_EQ(G->Channels, (std::vector<int>{1, 2, 3}));
  A.release(*G);

  EXPECT_TRUE(A.readmit(0));
  EXPECT_FALSE(A.isQuarantined(0));
  EXPECT_EQ(A.freeCount(), 4);
  auto Full = A.tryAcquire(4, 1);
  ASSERT_TRUE(Full.has_value());
  EXPECT_FALSE(Full->degraded());
}

TEST(ChannelAllocatorTest, QuarantinedLiveChannelIsWithheldOnRelease) {
  ChannelAllocator A(4);
  auto G = A.tryAcquire(4, 1);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(A.freeCount(), 0);

  // Quarantining an in-use channel does not revoke the grant; the channel
  // simply skips the free list when the grant comes back.
  EXPECT_TRUE(A.quarantine(1));
  EXPECT_EQ(A.freeCount(), 0);
  EXPECT_TRUE(A.release(*G));
  EXPECT_EQ(A.freeCount(), 3);
  auto Next = A.tryAcquire(4, 1);
  ASSERT_TRUE(Next.has_value());
  EXPECT_EQ(Next->Channels, (std::vector<int>{0, 2, 3}));
  A.release(*Next);
  EXPECT_TRUE(A.readmit(1));
  EXPECT_EQ(A.freeCount(), 4);
}

TEST(ChannelAllocatorTest, QuarantineIsIdempotentAndBoundsChecked) {
  ChannelAllocator A(2);
  EXPECT_FALSE(A.quarantine(-1));
  EXPECT_FALSE(A.quarantine(2));
  EXPECT_FALSE(A.readmit(5));
  EXPECT_TRUE(A.quarantine(0));
  EXPECT_TRUE(A.quarantine(0)); // idempotent
  EXPECT_EQ(A.freeCount(), 1);
  EXPECT_TRUE(A.readmit(0));
  EXPECT_TRUE(A.readmit(0)); // idempotent
  EXPECT_EQ(A.freeCount(), 2);
}

TEST(ChannelAllocatorTest, ConcurrentGrantsAreDisjoint) {
  ChannelAllocator A(10);
  auto G1 = A.tryAcquire(4, 1);
  auto G2 = A.tryAcquire(4, 1);
  auto G3 = A.tryAcquire(4, 1); // only 2 left: degraded
  ASSERT_TRUE(G1 && G2 && G3);
  EXPECT_TRUE(G3->degraded());

  std::set<int> Seen;
  for (const auto *G : {&*G1, &*G2, &*G3})
    for (int C : G->Channels) {
      EXPECT_GE(C, 0);
      EXPECT_LT(C, A.poolSize());
      EXPECT_TRUE(Seen.insert(C).second)
          << "channel " << C << " granted twice";
    }
  EXPECT_EQ(static_cast<int>(Seen.size()), 10);
  EXPECT_EQ(A.freeCount(), 0);
}

} // namespace
