//===- tests/gpu/GpuModelTest.cpp - GPU timing model tests ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpu/GpuModel.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "runtime/SystemConfig.h"

using namespace pf;

namespace {

Graph singleConv(int64_t H, int64_t Cin, int64_t Cout, int64_t K,
                 int64_t Stride = 1) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, H, H, Cin});
  B.output(B.conv2d(X, Cout, K, Stride, K / 2));
  return B.take();
}

} // namespace

TEST(GpuConfigTest, PeakFlops) {
  GpuConfig C;
  const double Fp32 = C.peakFlops(false);
  EXPECT_NEAR(Fp32, 30 * 64 * 2 * 1.68e9, 1e6);
  EXPECT_DOUBLE_EQ(C.peakFlops(true), Fp32 * C.Fp16Multiplier);
}

TEST(GpuConfigTest, BandwidthScalesWithChannels) {
  GpuConfig C;
  C.MemChannels = 16;
  const double Bw16 = C.memBandwidth();
  C.MemChannels = 32;
  EXPECT_DOUBLE_EQ(C.memBandwidth(), 2.0 * Bw16);
}

TEST(GpuModelTest, LargeConvIsComputeBound) {
  // A dense 3x3 conv with high reuse: compute >> memory (Fig. 1 premise).
  Graph G = singleConv(56, 256, 256, 3);
  GpuModel M((GpuConfig()));
  GpuKernelTime T = M.nodeTime(G, G.topoOrder().front());
  EXPECT_GT(T.ComputeNs, T.MemoryNs);
}

TEST(GpuModelTest, FcIsMemoryBound) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 25088});
  B.output(B.gemm(X, 4096));
  Graph G = B.take();
  GpuModel M((GpuConfig()));
  GpuKernelTime T = M.nodeTime(G, G.topoOrder().front());
  EXPECT_GT(T.MemoryNs, 10.0 * T.ComputeNs);
}

TEST(GpuModelTest, MemoryBoundKernelScalesWithChannels) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 25088});
  B.output(B.gemm(X, 4096));
  Graph G = B.take();
  GpuConfig C32;
  GpuConfig C16 = C32;
  C16.MemChannels = 16;
  const double T32 = GpuModel(C32).nodeTime(G, G.topoOrder().front()).Ns;
  const double T16 = GpuModel(C16).nodeTime(G, G.topoOrder().front()).Ns;
  EXPECT_GT(T16, 1.8 * T32);
}

TEST(GpuModelTest, ComputeBoundKernelInsensitiveToChannels) {
  // Fig. 3: compute-intensive layers barely notice halved channels.
  Graph G = singleConv(56, 256, 256, 3);
  GpuConfig C32;
  GpuConfig C16 = C32;
  C16.MemChannels = 16;
  const double T32 = GpuModel(C32).nodeTime(G, G.topoOrder().front()).Ns;
  const double T16 = GpuModel(C16).nodeTime(G, G.topoOrder().front()).Ns;
  EXPECT_LT(T16, 1.1 * T32);
}

TEST(GpuModelTest, SmallKernelsAreLaunchDominated) {
  Graph G = singleConv(4, 8, 8, 1);
  GpuConfig C;
  GpuModel M(C);
  GpuKernelTime T = M.nodeTime(G, G.topoOrder().front());
  EXPECT_GT(C.KernelLaunchNs, 0.5 * T.Ns);
}

TEST(GpuModelTest, FreeOps) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 8});
  B.output(B.flatten(X));
  Graph G = B.take();
  GpuModel M((GpuConfig()));
  EXPECT_EQ(M.nodeTime(G, G.topoOrder().front()).Ns, 0.0);
}

TEST(GpuModelTest, MoreWorkTakesLongerWhenSaturated) {
  // Above the occupancy saturation point, 4x the work takes ~4x the time.
  GpuModel M((GpuConfig()));
  Graph Small = singleConv(56, 128, 128, 3);
  Graph Large = singleConv(112, 128, 128, 3);
  const double TSmall = M.nodeTime(Small, Small.topoOrder().front()).Ns;
  const double TLarge = M.nodeTime(Large, Large.topoOrder().front()).Ns;
  EXPECT_GT(TLarge, 2.0 * TSmall);
}

TEST(GpuModelTest, LatencyBoundPlateauBelowSaturation) {
  // Below saturation a batch-1 conv is latency-bound: throughput scales
  // with occupancy, so doubling the spatial size does not double the time.
  GpuModel M((GpuConfig()));
  Graph Small = singleConv(14, 64, 64, 3);
  Graph Large = singleConv(28, 64, 64, 3);
  const double TSmall = M.nodeTime(Small, Small.topoOrder().front()).Ns;
  const double TLarge = M.nodeTime(Large, Large.topoOrder().front()).Ns;
  EXPECT_LT(TLarge, 2.0 * TSmall);
  EXPECT_GE(TLarge, TSmall - 1e-9);
}

TEST(GpuModelTest, EnergyIncludesStaticAndDynamic) {
  GpuConfig C;
  GpuModel M(C);
  GpuKernelTime Idle;
  Idle.Ns = 1e6; // 1 ms at zero utilization.
  Idle.Utilization = 0.0;
  EXPECT_NEAR(M.kernelEnergyJ(Idle), C.IdlePowerW * 1e-3, 1e-9);
  GpuKernelTime Busy = Idle;
  Busy.Utilization = 1.0;
  EXPECT_NEAR(M.kernelEnergyJ(Busy),
              (C.IdlePowerW + C.DynamicPowerW) * 1e-3, 1e-9);
  EXPECT_NEAR(M.idleEnergyJ(1e6), C.IdlePowerW * 1e-3, 1e-9);
}

TEST(GpuModelTest, UtilizationBounded) {
  GpuModel M((GpuConfig()));
  for (Graph G : {singleConv(8, 16, 16, 1), singleConv(112, 64, 128, 3)}) {
    GpuKernelTime T = M.nodeTime(G, G.topoOrder().front());
    EXPECT_GE(T.Utilization, 0.0);
    EXPECT_LE(T.Utilization, 1.0);
  }
}

TEST(GpuModelTest, CoherenceSlowdownScalesKernelBody) {
  // Section 5 footnote 2: write-through caches cost ~2.8% in the dual
  // GPU/PIM configuration.
  Graph G = singleConv(56, 256, 256, 3);
  GpuConfig WriteBack;
  GpuConfig WriteThrough = WriteBack;
  WriteThrough.CoherenceSlowdown = 1.028;
  const GpuKernelTime A =
      GpuModel(WriteBack).nodeTime(G, G.topoOrder().front());
  const GpuKernelTime B =
      GpuModel(WriteThrough).nodeTime(G, G.topoOrder().front());
  const double BodyA = A.Ns - WriteBack.KernelLaunchNs;
  const double BodyB = B.Ns - WriteThrough.KernelLaunchNs;
  EXPECT_NEAR(BodyB / BodyA, 1.028, 1e-9);
}

TEST(GpuModelTest, DualConfigEnablesWriteThrough) {
  EXPECT_DOUBLE_EQ(SystemConfig::dual().Gpu.CoherenceSlowdown, 1.028);
  EXPECT_DOUBLE_EQ(SystemConfig::gpuOnly().Gpu.CoherenceSlowdown, 1.0);
}

TEST(GpuModelTest, PresetConfigsDiffer) {
  EXPECT_GT(GpuConfig::titanVLike().memBandwidth(),
            GpuConfig().memBandwidth());
  EXPECT_GT(GpuConfig::rtx2080TiLike().NumSms, GpuConfig().NumSms);
}
