//===- tests/chaos/ChaosTest.cpp - seeded fault-schedule chaos --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos harness: drives seeded random fault schedules through the
/// recovery executor and holds it to the graceful-degradation contract —
/// every schedule terminates (watchdog-bounded, never a hang), produces a
/// valid timeline (never an assert), and either recovers with bit-identical
/// outputs (the runtime/Equivalence oracle; recovery only flips device
/// annotations) or reports structured degradation notes. No silent wrong
/// answers.
///
//===----------------------------------------------------------------------===//

#include <cmath>

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "models/Zoo.h"
#include "obs/Counters.h"
#include "runtime/Equivalence.h"
#include "runtime/Recovery.h"

using namespace pf;

namespace {

/// A ResNet-18-style residual network, shrunk so the interpreter-based
/// equivalence oracle stays fast across 100+ seeds: stacked 3x3 residual
/// blocks with a strided downsample stage and an FC head, all PIM
/// candidates annotated for PIM.
Graph resNetStyle() {
  GraphBuilder B("resnet-style");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 16});
  ValueId S = B.conv2d(X, 16, 3, 1, 1);

  // Two identity residual blocks.
  for (int I = 0; I < 2; ++I) {
    ValueId C1 = B.relu(B.conv2d(S, 16, 3, 1, 1));
    ValueId C2 = B.conv2d(C1, 16, 3, 1, 1);
    S = B.relu(B.add(C2, S));
  }
  // One downsample block (stride 2, 1x1 projection shortcut).
  {
    ValueId C1 = B.relu(B.conv2d(S, 32, 3, 2, 1));
    ValueId C2 = B.conv2d(C1, 32, 3, 1, 1);
    ValueId P = B.conv2d(S, 32, 1, 2, 0);
    S = B.relu(B.add(C2, P));
  }
  B.output(B.gemm(B.flatten(B.globalAvgPool(S)), 10));
  Graph G = B.take();
  for (const Node &N : G.nodes())
    if (isPimCandidate(N))
      G.node(N.Id).Dev = Device::Pim;
  return G;
}

SystemConfig chaosConfig() { return SystemConfig::dual(8, true, 16); }

class ChaosRecovery : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ChaosRecovery, SeededFaultScheduleDegradesGracefully) {
  const uint64_t Seed = GetParam();
  const SystemConfig Config = chaosConfig();
  const FaultModel Faults = FaultModel::chaos(Seed, Config.Pim.Channels);
  const Graph G = resNetStyle();

  DiagnosticEngine DE;
  RecoveryResult R = RecoveryExecutor(Config, Faults).run(G, DE);

  // Contract 1: always a valid timeline — no assert, no hang, no error.
  ASSERT_TRUE(R.Ok) << "seed " << Seed << " faults " << Faults.describe()
                    << "\n"
                    << DE.render();
  EXPECT_FALSE(DE.hasErrors()) << DE.render();
  EXPECT_TRUE(std::isfinite(R.Schedule.TotalNs));
  EXPECT_GT(R.Schedule.TotalNs, 0.0);
  EXPECT_EQ(R.Schedule.Nodes.size(), G.numNodes());

  // Contract 2: degradation is never silent — every degraded run carries
  // structured notes explaining what was lost.
  if (R.Degraded) {
    EXPECT_FALSE(R.Notes.empty()) << "seed " << Seed;
  }

  // Contract 3: recovery preserves semantics bit-exactly. Only device
  // annotations may differ between the input and the executed graph.
  const auto Diff = compareGraphOutputs(G, R.Executed, Seed);
  EXPECT_EQ(Diff, std::nullopt)
      << "seed " << Seed << " faults " << Faults.describe() << ": " << *Diff;

  // Contract 4: determinism — the same seed recovers identically.
  DiagnosticEngine DE2;
  RecoveryResult R2 = RecoveryExecutor(Config, Faults).run(G, DE2);
  ASSERT_TRUE(R2.Ok);
  EXPECT_DOUBLE_EQ(R.Schedule.TotalNs, R2.Schedule.TotalNs);
  EXPECT_EQ(R.Notes, R2.Notes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosRecovery,
                         ::testing::Range<uint64_t>(0, 120));

TEST(ChaosHarness, CountersTrackFaultActivity) {
  obs::Registry::instance().setEnabled(true);
  obs::Registry::instance().reset();
  const SystemConfig Config = chaosConfig();
  const Graph G = resNetStyle();
  FaultModel M;
  M.addDead(0);
  M.addTransient(TransientFault{1, PimCmdKind::Comp, 0, 2});
  DiagnosticEngine DE;
  RecoveryResult R = RecoveryExecutor(Config, M).run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  const auto Counters = obs::Registry::instance().counterSnapshot();
  const auto Value = [&Counters](const char *Name) -> int64_t {
    for (const auto &[N, V] : Counters)
      if (N == Name)
        return V;
    return 0;
  };
  EXPECT_EQ(Value("recovery.runs"), 1);
  EXPECT_EQ(Value("recovery.degraded_runs"), 1);
  EXPECT_EQ(Value("recovery.dead_channels"), 1);
  EXPECT_GT(Value("recovery.nodes_remapped"), 0);
  EXPECT_GT(Value("pim.sim.fault_runs"), 0);
  obs::Registry::instance().setEnabled(false);
  obs::Registry::instance().reset();
}

TEST(ChaosHarness, FullResNet18TerminatesUnderFaults) {
  // A few seeds against the real model: termination and validity only (the
  // interpreter-based oracle would dominate the suite's runtime here).
  Graph G = buildResNet18();
  for (const Node &N : G.nodes())
    if (isPimCandidate(N))
      G.node(N.Id).Dev = Device::Pim;
  const SystemConfig Config = SystemConfig::dual(8, true, 16);
  for (uint64_t Seed : {1u, 2u, 3u}) {
    const FaultModel Faults = FaultModel::chaos(Seed, Config.Pim.Channels);
    DiagnosticEngine DE;
    RecoveryResult R = RecoveryExecutor(Config, Faults).run(G, DE);
    ASSERT_TRUE(R.Ok) << "seed " << Seed << "\n" << DE.render();
    EXPECT_FALSE(DE.hasErrors());
    EXPECT_TRUE(std::isfinite(R.Schedule.TotalNs));
    EXPECT_EQ(R.Schedule.Nodes.size(), G.numNodes());
  }
}

TEST(ChaosHarness, WorstCaseScheduleStillTerminates) {
  // Every channel faulted at once: dead, stalled, slow, and transient
  // entries beyond the retry budget. The floor fallback must route the
  // whole graph to the GPU and still produce a timeline.
  const SystemConfig Config = chaosConfig();
  FaultModel M;
  for (int Ch = 0; Ch < Config.Pim.Channels; ++Ch) {
    if (Ch % 2 == 0)
      M.addDead(Ch);
    else
      M.addStalled(Ch);
    M.addSlow(Ch, 1000.0);
    M.addTransient(TransientFault{Ch, PimCmdKind::Comp, 0, 1 << 19});
  }
  const Graph G = resNetStyle();
  DiagnosticEngine DE;
  RecoveryResult R = RecoveryExecutor(Config, M).run(G, DE);
  ASSERT_TRUE(R.Ok) << DE.render();
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.SurvivingChannels, 0);
  for (const NodeSchedule &S : R.Schedule.Nodes)
    EXPECT_EQ(S.Dev, Device::Gpu);
  EXPECT_EQ(compareGraphOutputs(G, R.Executed, 99), std::nullopt);
}
