//===- tests/obs/FlightRecorderTest.cpp - Flight-recorder tests -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "obs/FlightRecorder.h"
#include "support/Ring.h"
#include "support/ThreadPool.h"

using namespace pf;
using namespace pf::obs;

namespace {

// The recorder is a process-wide singleton shared with every other suite in
// this binary (engine tests record real events), so each test starts from a
// cleared state.
class FlightRecorderTest : public ::testing::Test {
protected:
  void SetUp() override { FlightRecorder::instance().clear(); }
  void TearDown() override { FlightRecorder::instance().clear(); }
};

TEST(BoundedRing, KeepsLastNInPushOrder) {
  BoundedRing<int, 4> R;
  for (int I = 0; I < 10; ++I)
    R.push(I);
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.pushed(), 10u);
  std::vector<int> Seen;
  R.forEach([&](const int &V) { Seen.push_back(V); });
  EXPECT_EQ(Seen, (std::vector<int>{6, 7, 8, 9}));
}

TEST_F(FlightRecorderTest, WraparoundRetainsLastRingCapacity) {
  FlightRecorder &FR = FlightRecorder::instance();
  const size_t Extra = 50;
  for (size_t I = 0; I < FlightRecorder::RingCapacity + Extra; ++I)
    FR.record(FlightEventKind::CacheHit, static_cast<int64_t>(I));
  const auto Events = FR.merged();
  ASSERT_EQ(Events.size(), FlightRecorder::RingCapacity);
  // The oldest Extra events were overwritten: sequences start at Extra and
  // run contiguously to the last push.
  EXPECT_EQ(Events.front().Seq, Extra);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Seq, Events[I - 1].Seq + 1);
}

TEST_F(FlightRecorderTest, MergedIsSeqSortedAcrossThreads) {
  FlightRecorder &FR = FlightRecorder::instance();
  ThreadPool Pool(4);
  const size_t N = 1000;
  Pool.parallelFor(N, [&](size_t I) {
    FR.record(FlightEventKind::RetryIssued, static_cast<int64_t>(I),
              static_cast<int32_t>(I % 16));
  });
  const auto Events = FR.merged();
  ASSERT_FALSE(Events.empty());
  EXPECT_LE(Events.size(), N);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LT(Events[I - 1].Seq, Events[I].Seq) << "merge order broken";
}

TEST_F(FlightRecorderTest, RenderTextNamesReasonAndEvents) {
  FlightRecorder &FR = FlightRecorder::instance();
  FR.record(FlightEventKind::ChannelRemap, 42, 3, 9, 2.0, "unit");
  FR.record(FlightEventKind::FloorFallback, 43, 1, 1);
  const std::string Text = FR.renderText("unit-test reason");
  EXPECT_NE(Text.find("# pimflow flight recorder dump"), std::string::npos);
  EXPECT_NE(Text.find("# reason: unit-test reason"), std::string::npos);
  EXPECT_NE(Text.find("kind=channel-remap"), std::string::npos);
  EXPECT_NE(Text.find("kind=floor-fallback"), std::string::npos);
  EXPECT_NE(Text.find("note=unit"), std::string::npos);
}

TEST_F(FlightRecorderTest, ClearEmptiesAndRestartsSequence) {
  FlightRecorder &FR = FlightRecorder::instance();
  FR.record(FlightEventKind::CacheMiss, 1);
  ASSERT_FALSE(FR.merged().empty());
  FR.clear();
  EXPECT_TRUE(FR.merged().empty());
  FR.record(FlightEventKind::CacheMiss, 2);
  const auto Events = FR.merged();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Seq, 0u);
}

TEST_F(FlightRecorderTest, DisabledRecordingIsDropped) {
  FlightRecorder &FR = FlightRecorder::instance();
  FR.setEnabled(false);
  flightEvent(FlightEventKind::CacheHit, 1);
  FR.setEnabled(true);
  EXPECT_TRUE(FR.merged().empty());
}

TEST_F(FlightRecorderTest, AutoDumpWithoutPathIsANoop) {
  FlightRecorder &FR = FlightRecorder::instance();
  FR.setAutoDumpPath("");
  FR.record(FlightEventKind::WatchdogTrip, 7);
  FR.autoDump("should not write anywhere"); // must not crash or write
  EXPECT_TRUE(FR.autoDumpPath().empty());
}

TEST_F(FlightRecorderTest, DumpWritesMergedTrace) {
  FlightRecorder &FR = FlightRecorder::instance();
  FR.record(FlightEventKind::ChannelDead, 5, 2);
  const std::string Path =
      ::testing::TempDir() + "/pf_flight_recorder_test.txt";
  ASSERT_TRUE(FR.dump(Path, "dump test"));
  FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[256] = {};
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_EQ(std::string(Buf), "# pimflow flight recorder dump\n");
}

} // namespace
