//===- tests/obs/TraceCheckTest.cpp - Trace validator tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// checkChromeTrace (obs/TraceCheck.h) is the gate behind pf_json_check
// --chrome and pf_trace_check, so its rejections matter as much as its
// acceptances: unbalanced or misnamed B/E spans, unresolved flow ids, and
// the original field-presence rules must all fail with an indexed error.
//
//===----------------------------------------------------------------------===//

#include <string>

#include <gtest/gtest.h>

#include "obs/Json.h"
#include "obs/TraceCheck.h"

using namespace pf;
using namespace pf::obs;

namespace {

/// Wraps \p Events (a JSON fragment) into a trace document and runs the
/// checker, returning the error (empty = clean).
std::string checkEvents(const std::string &Events,
                        TraceCheckSummary *Summary = nullptr) {
  const std::string Text = "{\"traceEvents\":[" + Events + "]}";
  std::string ParseError;
  const auto Doc = JsonValue::parse(Text, &ParseError);
  EXPECT_TRUE(Doc.has_value()) << ParseError;
  if (!Doc)
    return "unparseable";
  std::string Error;
  if (checkChromeTrace(*Doc, Error, Summary))
    return "";
  EXPECT_FALSE(Error.empty());
  return Error;
}

const char *kSpanPair =
    "{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
    "{\"name\":\"a\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":5}";

TEST(TraceCheckTest, AcceptsBalancedSpansAndCountsThem) {
  TraceCheckSummary S;
  EXPECT_EQ(checkEvents(std::string(kSpanPair) +
                            ",{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,"
                            "\"tid\":1,\"ts\":1,\"dur\":2}",
                        &S),
            "");
  EXPECT_EQ(S.Events, 3u);
  EXPECT_EQ(S.PairedSpans, 1u);
  EXPECT_EQ(S.CompleteSpans, 1u);
}

TEST(TraceCheckTest, AcceptsNestedAndZeroLengthSpans) {
  EXPECT_EQ(
      checkEvents(
          "{\"name\":\"outer\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
          "{\"name\":\"inner\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
          "{\"name\":\"inner\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":0},"
          "{\"name\":\"outer\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":4}"),
      "");
}

TEST(TraceCheckTest, RejectsUnclosedB) {
  const std::string Error = checkEvents(
      "{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0}");
  EXPECT_NE(Error.find("unclosed 'B'"), std::string::npos) << Error;
}

TEST(TraceCheckTest, RejectsEWithoutB) {
  const std::string Error = checkEvents(
      "{\"name\":\"a\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":0}");
  EXPECT_NE(Error.find("'E' with no open 'B'"), std::string::npos)
      << Error;
}

TEST(TraceCheckTest, RejectsCrossLaneClose) {
  // The second E is on another tid: its own lane has no open B, even
  // though an identically-named pair closed cleanly on tid 1.
  const std::string Error = checkEvents(
      "{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
      "{\"name\":\"a\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":5},"
      "{\"name\":\"a\",\"ph\":\"E\",\"pid\":1,\"tid\":2,\"ts\":5}");
  EXPECT_NE(Error.find("'E' with no open 'B'"), std::string::npos)
      << Error;
}

TEST(TraceCheckTest, RejectsMismatchedSpanNames) {
  const std::string Error = checkEvents(
      "{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},"
      "{\"name\":\"b\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":5}");
  EXPECT_NE(Error.find("does not close"), std::string::npos) << Error;
}

TEST(TraceCheckTest, ResolvesFlowPairsAndRejectsDanglers) {
  TraceCheckSummary S;
  EXPECT_EQ(
      checkEvents(std::string(kSpanPair) +
                      ",{\"name\":\"f\",\"ph\":\"s\",\"pid\":1,\"tid\":1,"
                      "\"ts\":0,\"id\":42}"
                      ",{\"name\":\"f\",\"ph\":\"f\",\"pid\":2,\"tid\":3,"
                      "\"ts\":1,\"id\":42,\"bp\":\"e\"}",
                  &S),
      "");
  EXPECT_EQ(S.FlowChains, 1u);

  std::string Error = checkEvents(
      std::string(kSpanPair) +
      ",{\"name\":\"f\",\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"id\":42}");
  EXPECT_NE(Error.find("no matching finish"), std::string::npos) << Error;

  Error = checkEvents(
      std::string(kSpanPair) +
      ",{\"name\":\"f\",\"ph\":\"f\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"id\":42}");
  EXPECT_NE(Error.find("no matching start"), std::string::npos) << Error;
}

TEST(TraceCheckTest, KeepsTheFieldPresenceRules) {
  EXPECT_NE(checkEvents("{\"ph\":\"i\",\"tid\":1,\"ts\":0}").find(
                "missing numeric 'pid'"),
            std::string::npos);
  EXPECT_NE(checkEvents("{\"ph\":\"i\",\"pid\":1,\"tid\":1}").find(
                "missing numeric 'ts'"),
            std::string::npos);
  EXPECT_NE(checkEvents("{\"pid\":1,\"tid\":1,\"ts\":0}").find(
                "missing string 'ph'"),
            std::string::npos);
  EXPECT_NE(
      checkEvents("{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":-1}").find(
          "negative 'ts'"),
      std::string::npos);
  EXPECT_NE(checkEvents("{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,"
                        "\"dur\":-2}")
                .find("negative 'dur'"),
            std::string::npos);
  // Metadata events need no timestamp.
  EXPECT_EQ(checkEvents("{\"name\":\"process_name\",\"ph\":\"M\","
                        "\"pid\":1,\"tid\":0,\"args\":{\"name\":\"p\"}}"),
            "");
}

TEST(TraceCheckTest, RejectsEmptyDocuments) {
  std::string ParseError;
  const auto Doc = JsonValue::parse("{\"traceEvents\":[]}", &ParseError);
  ASSERT_TRUE(Doc.has_value()) << ParseError;
  std::string Error;
  EXPECT_FALSE(checkChromeTrace(*Doc, Error));
  EXPECT_NE(Error.find("traceEvents"), std::string::npos);
}

} // namespace
