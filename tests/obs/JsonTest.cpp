//===- tests/obs/JsonTest.cpp - JSON writer/parser tests --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>

#include <gtest/gtest.h>

using namespace pf;
using obs::JsonValue;
using obs::JsonWriter;

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter W;
  W.beginObject()
      .field("a", 1)
      .key("l")
      .beginArray()
      .value("x")
      .value(2)
      .value(true)
      .nullValue()
      .endArray()
      .key("o")
      .beginObject()
      .field("b", 2.5)
      .endObject()
      .endObject();
  EXPECT_EQ(W.take(), "{\"a\":1,\"l\":[\"x\",2,true,null],\"o\":{\"b\":2.5}}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::jsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, DoublesSurviveRoundTrip) {
  for (double D : {0.0, 1.5, -3.25, 1e-9, 123456789.123456, 1.0 / 3.0}) {
    JsonWriter W;
    W.beginArray().value(D).endArray();
    const auto Doc = JsonValue::parse(W.take());
    ASSERT_TRUE(Doc.has_value());
    ASSERT_EQ(Doc->Array.size(), 1u);
    EXPECT_EQ(Doc->Array[0].Number, D);
  }
}

TEST(JsonParserTest, ParsesDocumentShapes) {
  const auto Doc = JsonValue::parse(
      R"({"s":"hi","n":-2.5e2,"b":false,"z":null,"a":[1,2],"o":{"k":"v"}})");
  ASSERT_TRUE(Doc.has_value());
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->find("s")->Str, "hi");
  EXPECT_EQ(Doc->find("n")->Number, -250.0);
  EXPECT_FALSE(Doc->find("b")->Boolean);
  EXPECT_EQ(Doc->find("z")->K, JsonValue::Kind::Null);
  ASSERT_EQ(Doc->find("a")->Array.size(), 2u);
  EXPECT_EQ(Doc->find("o")->find("k")->Str, "v");
  EXPECT_EQ(Doc->find("missing"), nullptr);
  EXPECT_EQ(Doc->numberOr("n", 7.0), -250.0);
  EXPECT_EQ(Doc->numberOr("s", 7.0), 7.0);
}

TEST(JsonParserTest, DecodesStringEscapes) {
  const auto Doc = JsonValue::parse(R"(["a\"b\\\nAé"])");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->Array[0].Str, "a\"b\\\nA\xc3\xa9");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("{", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("tru").has_value());
  EXPECT_FALSE(JsonValue::parse("1 2").has_value()); // Trailing garbage.
  EXPECT_FALSE(JsonValue::parse("").has_value());
}

TEST(JsonFileTest, WriteReadRoundTrip) {
  const std::string Path = "pf_json_test_tmp.json";
  ASSERT_TRUE(obs::writeTextFile(Path, "{\"x\":1}"));
  const auto Text = obs::readTextFile(Path);
  ASSERT_TRUE(Text.has_value());
  EXPECT_EQ(*Text, "{\"x\":1}");
  std::remove(Path.c_str());
  EXPECT_FALSE(obs::readTextFile(Path).has_value());
}
