//===- tests/obs/ResetTest.cpp - resetAll coverage contract -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Asserts the obs::resetAll() contract documented in obs/Counters.h: one
// call clears every *global* registry — Tracer spans, Registry counters
// and histograms, MetricsRegistry histograms/gauges/windows plus the
// sim-cycle clock, and the FlightRecorder rings — and touches nothing
// else. In particular a session Scope's registries survive a global
// sweep: they belong to the scope's owner and are reset only through
// Scope::reset(). The bench harness relies on this when it brackets
// iterations with resetAll() (the old bench_micro dance reset only the
// MetricsRegistry and left half the state cumulative).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "obs/Counters.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Scope.h"
#include "obs/Trace.h"

using namespace pf::obs;

namespace {

class ResetTest : public ::testing::Test {
protected:
  void SetUp() override {
    resetAll();
    setObservabilityEnabled(true);
  }
  void TearDown() override {
    resetAll();
    setObservabilityEnabled(false);
  }
};

/// Populates every global registry with at least one entry.
void populateGlobals() {
  Tracer::instance().record("reset.span", "test", 0.0, 1.0);
  addCounter("reset.counter", 3);
  recordHistogram("reset.histogram", 2.0);
  recordMetric("reset.metric", 4.0);
  setGauge("reset.gauge", 5.0);
  recordMetricWindowed("reset.window", TickDomain::SimCycles, 16, 8, 6.0);
  advanceSimCycles(7);
  flightEvent(FlightEventKind::ExecStart, 0, 1, 2);
}

TEST_F(ResetTest, ResetAllClearsEveryGlobalRegistry) {
  populateGlobals();

  // Everything really landed (a vacuous clear would also pass the
  // emptiness checks below).
  EXPECT_GT(Tracer::instance().numEvents(), 0u);
  EXPECT_FALSE(Registry::instance().counterSnapshot().empty());
  EXPECT_FALSE(Registry::instance().histogramSnapshot().empty());
  EXPECT_FALSE(MetricsRegistry::instance().histogramSnapshot().empty());
  EXPECT_FALSE(MetricsRegistry::instance().gaugeSnapshot().empty());
  EXPECT_FALSE(MetricsRegistry::instance().windowSnapshot().empty());
  EXPECT_EQ(MetricsRegistry::instance().cycles(), 7);
  EXPECT_FALSE(FlightRecorder::instance().merged().empty());

  resetAll();

  EXPECT_EQ(Tracer::instance().numEvents(), 0u);
  EXPECT_TRUE(Registry::instance().counterSnapshot().empty());
  EXPECT_TRUE(Registry::instance().histogramSnapshot().empty());
  EXPECT_TRUE(MetricsRegistry::instance().histogramSnapshot().empty());
  EXPECT_TRUE(MetricsRegistry::instance().gaugeSnapshot().empty());
  EXPECT_TRUE(MetricsRegistry::instance().windowSnapshot().empty());
  EXPECT_EQ(MetricsRegistry::instance().cycles(), 0);
  EXPECT_TRUE(FlightRecorder::instance().merged().empty());
}

TEST_F(ResetTest, ResetAllIsIdempotentAndKeepsRegistrations) {
  populateGlobals();
  resetAll();
  resetAll(); // a second sweep over zeroed registries is a no-op

  // Registrations survive the sweep: re-recording through the same names
  // works and starts from zero, not from pre-reset remnants.
  addCounter("reset.counter", 2);
  auto Counters = Registry::instance().counterSnapshot();
  ASSERT_EQ(Counters.size(), 1u);
  EXPECT_EQ(Counters[0].first, "reset.counter");
  EXPECT_EQ(Counters[0].second, 2);
}

TEST_F(ResetTest, SessionScopesSurviveTheGlobalSweep) {
  Scope Session;
  {
    ScopeGuard Guard(Session);
    addCounter("scoped.counter", 11);
    recordMetric("scoped.metric", 1.5);
  }
  // The scope diverted the records away from the globals...
  EXPECT_TRUE(Registry::instance().counterSnapshot().empty());
  EXPECT_TRUE(MetricsRegistry::instance().histogramSnapshot().empty());

  populateGlobals();
  resetAll();

  // ...and the global sweep must not reach into the session's registries.
  auto Scoped = Session.registry().counterSnapshot();
  ASSERT_EQ(Scoped.size(), 1u);
  EXPECT_EQ(Scoped[0].second, 11);
  ASSERT_EQ(Session.metrics().histogramSnapshot().size(), 1u);

  // Scope::reset() is the owner's tool for its own registries.
  Session.reset();
  EXPECT_TRUE(Session.registry().counterSnapshot().empty());
  EXPECT_TRUE(Session.metrics().histogramSnapshot().empty());
}

TEST_F(ResetTest, ScopeGuardRestoresGlobalRoutingOnExit) {
  Scope Session;
  {
    ScopeGuard Guard(Session);
    EXPECT_EQ(currentScope(), &Session);
    addCounter("routing.counter");
  }
  EXPECT_EQ(currentScope(), nullptr);
  addCounter("routing.counter");

  // One bump landed in the scope, one in the globals.
  ASSERT_EQ(Session.registry().counterSnapshot().size(), 1u);
  EXPECT_EQ(Session.registry().counterSnapshot()[0].second, 1);
  ASSERT_EQ(Registry::instance().counterSnapshot().size(), 1u);
  EXPECT_EQ(Registry::instance().counterSnapshot()[0].second, 1);
}

} // namespace
