//===- tests/obs/PerfDiffGateTest.cpp - Diff-gate edge cases ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The zero-baseline and histogram-row gating behavior of perfDiff: the
// epsilon-floored rule must flag 0 -> nonzero, stay byte-compatible with
// the old pure-relative rule for positive baselines, and gate the p50/p99
// of deterministic (non-wall-clock) histograms from the report's metrics
// section.
//
//===----------------------------------------------------------------------===//

#include <string>

#include <gtest/gtest.h>

#include "obs/Json.h"
#include "obs/PerfReport.h"

using namespace pf::obs;

namespace {

JsonValue parse(const std::string &Text) {
  std::string Error;
  auto Doc = JsonValue::parse(Text, &Error);
  EXPECT_TRUE(Doc) << Error;
  return *Doc;
}

const MetricDelta *findDelta(const PerfDiffResult &R,
                             const std::string &Name) {
  for (const MetricDelta &D : R.Deltas)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

TEST(PerfDiffGate, ZeroBaselineToNonzeroRegresses) {
  const JsonValue Base = parse(
      R"({"results":[{"figure":"f","key":"k","end_to_end_ns":0,"energy_j":0}]})");
  const JsonValue Cur = parse(
      R"({"results":[{"figure":"f","key":"k","end_to_end_ns":100,"energy_j":0}]})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_TRUE(R.HasRegression);
  const MetricDelta *D = findDelta(R, "f/k.end_to_end_ns");
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->Regressed);
  // 0 -> 0 keeps passing.
  const MetricDelta *E = findDelta(R, "f/k.energy_j");
  ASSERT_NE(E, nullptr);
  EXPECT_FALSE(E->Regressed);
}

TEST(PerfDiffGate, PositiveBaselineRuleUnchanged) {
  const JsonValue Base =
      parse(R"({"end_to_end_ns":100, "energy_j":1.0})");
  // 24% over: inside the default 25% threshold.
  const JsonValue CurOk =
      parse(R"({"end_to_end_ns":124, "energy_j":1.0})");
  EXPECT_FALSE(perfDiff(Base, CurOk).HasRegression);
  // 26% over: out.
  const JsonValue CurBad =
      parse(R"({"end_to_end_ns":126, "energy_j":1.0})");
  EXPECT_TRUE(perfDiff(Base, CurBad).HasRegression);
}

TEST(PerfDiffGate, AbsEpsilonWidensTheZeroFloor) {
  const JsonValue Base = parse(
      R"({"results":[{"figure":"f","key":"k","end_to_end_ns":0,"energy_j":0}]})");
  const JsonValue Cur = parse(
      R"({"results":[{"figure":"f","key":"k","end_to_end_ns":1,"energy_j":0}]})");
  PerfDiffOptions Wide;
  Wide.AbsEpsilon = 100.0; // floor: 0.25 * 100 = 25 absolute headroom
  EXPECT_FALSE(perfDiff(Base, Cur, Wide).HasRegression);
  EXPECT_TRUE(perfDiff(Base, Cur).HasRegression); // default 1e-9 floor
}

TEST(PerfDiffGate, HistogramRowsGateP50AndP99) {
  const JsonValue Base = parse(R"({
    "end_to_end_ns": 100,
    "metrics": {"histograms": {
      "engine.node_duration_ns": {"p50": 100, "p99": 200},
      "profiler.measure_wall_us": {"p50": 1, "p99": 2}
    }}})");
  const JsonValue Cur = parse(R"({
    "end_to_end_ns": 100,
    "metrics": {"histograms": {
      "engine.node_duration_ns": {"p50": 100, "p99": 400},
      "profiler.measure_wall_us": {"p50": 50, "p99": 90}
    }}})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_TRUE(R.HasRegression);
  const MetricDelta *P99 =
      findDelta(R, "metrics.histograms.engine.node_duration_ns.p99");
  ASSERT_NE(P99, nullptr);
  EXPECT_TRUE(P99->Regressed);
  const MetricDelta *P50 =
      findDelta(R, "metrics.histograms.engine.node_duration_ns.p50");
  ASSERT_NE(P50, nullptr);
  EXPECT_FALSE(P50->Regressed);
  // Wall-clock histograms are machine-dependent and never gate, no matter
  // how badly they moved.
  EXPECT_EQ(findDelta(R, "metrics.histograms.profiler.measure_wall_us.p50"),
            nullptr);
}

TEST(PerfDiffGate, HistogramMissingFromCurrentIsARegression) {
  const JsonValue Base = parse(R"({
    "end_to_end_ns": 100,
    "metrics": {"histograms": {"pim.channel_cycles": {"p50": 10, "p99": 20}}}})");
  const JsonValue Cur = parse(R"({"end_to_end_ns": 100})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_TRUE(R.HasRegression);
  ASSERT_FALSE(R.Notes.empty());
  EXPECT_NE(R.Notes[0].find("pim.channel_cycles"), std::string::npos);
}

TEST(PerfDiffGate, ReportsWithoutMetricsSectionStillDiff) {
  // Schema-v1 reports (no metrics key) must keep diffing on the fixed
  // metric set alone.
  const JsonValue Base = parse(R"({"end_to_end_ns": 100})");
  const JsonValue Cur = parse(R"({"end_to_end_ns": 90})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_FALSE(R.HasRegression);
  EXPECT_EQ(R.Deltas.size(), 1u);
}

} // namespace
