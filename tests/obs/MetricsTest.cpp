//===- tests/obs/MetricsTest.cpp - Streaming-metrics unit tests -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The quantile tests check the histogram's advertised contract directly:
// for closed-form sample sets (uniform, exponential, two-point) every
// reported quantile must be within relErrorBound() of the exact sample at
// rank ceil(Q * N).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/Metrics.h"

using namespace pf::obs;

namespace {

double exactQuantile(const std::vector<double> &Sorted, double Q) {
  const size_t N = Sorted.size();
  size_t Rank = static_cast<size_t>(std::ceil(Q * static_cast<double>(N)));
  Rank = std::min(std::max<size_t>(Rank, 1), N);
  return Sorted[Rank - 1];
}

void expectBoundedQuantiles(std::vector<double> Values) {
  LogLinearHistogram H;
  for (double V : Values)
    H.record(V);
  std::sort(Values.begin(), Values.end());
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    const double Exact = exactQuantile(Values, Q);
    const double Got = H.quantile(Q);
    EXPECT_NEAR(Got, Exact,
                std::abs(Exact) * LogLinearHistogram::relErrorBound() + 1e-12)
        << "quantile " << Q;
  }
}

TEST(LogLinearHistogram, UniformQuantilesWithinBound) {
  std::vector<double> V;
  for (int I = 1; I <= 10000; ++I)
    V.push_back(static_cast<double>(I));
  expectBoundedQuantiles(std::move(V));
}

TEST(LogLinearHistogram, ExponentialQuantilesWithinBound) {
  // Inverse-CDF samples of Exp(1/1000): heavy tail across many octaves.
  std::vector<double> V;
  const int N = 5000;
  for (int I = 0; I < N; ++I)
    V.push_back(-std::log(1.0 - (I + 0.5) / N) * 1000.0);
  expectBoundedQuantiles(std::move(V));
}

TEST(LogLinearHistogram, TwoPointQuantilesWithinBound) {
  // 90% fast mode at 10, 10% slow mode at 1000: p50/p90 sit on the fast
  // mode, p99/p999 on the slow one — the shape anomaly rules look for.
  std::vector<double> V(900, 10.0);
  V.insert(V.end(), 100, 1000.0);
  expectBoundedQuantiles(std::move(V));
}

TEST(LogLinearHistogram, ExactCountSumMinMax) {
  LogLinearHistogram H;
  for (double V : {3.0, 7.0, 11.0, 200.0})
    H.record(V);
  const QuantileStats S = H.stats();
  EXPECT_EQ(S.Count, 4);
  EXPECT_DOUBLE_EQ(S.Sum, 221.0);
  EXPECT_DOUBLE_EQ(S.Min, 3.0);
  EXPECT_DOUBLE_EQ(S.Max, 200.0);
  EXPECT_DOUBLE_EQ(S.RelErrorBound, LogLinearHistogram::relErrorBound());
}

TEST(LogLinearHistogram, ZeroAndNegativeLandInExactZeroBucket) {
  LogLinearHistogram H;
  H.record(0.0);
  H.record(-5.0);
  H.record(0.0);
  H.record(100.0);
  // Ranks 1..3 are the zero bucket (reported exactly), rank 4 is 100.
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
  EXPECT_NEAR(H.quantile(0.999), 100.0,
              100.0 * LogLinearHistogram::relErrorBound());
}

TEST(LogLinearHistogram, NonFiniteSamplesDropped) {
  LogLinearHistogram H;
  H.record(std::nan(""));
  H.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(H.stats().Count, 0);
  H.record(5.0);
  EXPECT_EQ(H.stats().Count, 1);
}

TEST(LogLinearHistogram, QuantilesClampedToObservedRange) {
  LogLinearHistogram H;
  H.record(100.0);
  // A single sample: every quantile must report it exactly (bucket
  // midpoints are clamped to [Min, Max]).
  EXPECT_DOUBLE_EQ(H.quantile(0.001), 100.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.999), 100.0);
}

TEST(SlidingWindow, TrailingSpanAndRecycling) {
  SlidingWindow W(TickDomain::SimCycles, 10, 4); // span = 40 ticks
  W.record(5, 1.0);
  W.record(15, 2.0);
  W.record(25, 3.0);
  W.record(35, 4.0);
  WindowStats S = W.stats(35);
  EXPECT_EQ(S.Count, 4);
  EXPECT_DOUBLE_EQ(S.Sum, 10.0);
  EXPECT_EQ(S.SpanTicks, 40);

  // Jump far ahead: the slot holding tick 35's bucket is recycled and the
  // older epochs age out of the trailing span.
  W.record(75, 5.0);
  S = W.stats(75);
  EXPECT_EQ(S.Count, 1);
  EXPECT_DOUBLE_EQ(S.Sum, 5.0);
}

TEST(SlidingWindow, StaleBucketsExcludedWithoutRewrite) {
  SlidingWindow W(TickDomain::WallUs, 100, 2); // span = 200 ticks
  W.record(50, 7.0);
  EXPECT_EQ(W.stats(50).Count, 1);
  // Reading far in the future must not count the stale bucket even though
  // its slot was never rewritten.
  EXPECT_EQ(W.stats(10'000).Count, 0);
}

class MetricsRegistryTest : public ::testing::Test {
protected:
  void SetUp() override {
    MetricsRegistry::instance().reset();
    WasEnabled = MetricsRegistry::instance().enabled();
    MetricsRegistry::instance().setEnabled(true);
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    MetricsRegistry::instance().setEnabled(WasEnabled);
  }
  bool WasEnabled = false;
};

TEST_F(MetricsRegistryTest, SnapshotsAreNameSorted) {
  recordMetric("unit.zz_last", 1.0);
  recordMetric("unit.aa_first", 1.0);
  recordMetric("unit.mm_middle", 1.0);
  const auto Snap = MetricsRegistry::instance().histogramSnapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      Snap.begin(), Snap.end(),
      [](const auto &A, const auto &B) { return A.first < B.first; }));
}

TEST_F(MetricsRegistryTest, DisabledRecordingIsDropped) {
  MetricsRegistry::instance().setEnabled(false);
  recordMetric("unit.gated", 1.0);
  setGauge("unit.gated_gauge", 1.0);
  MetricsRegistry::instance().setEnabled(true);
  EXPECT_TRUE(MetricsRegistry::instance().histogramSnapshot().empty());
  EXPECT_TRUE(MetricsRegistry::instance().gaugeSnapshot().empty());
}

TEST_F(MetricsRegistryTest, WindowedRecordFeedsBothViews) {
  recordMetricWindowed("unit.windowed", TickDomain::SimCycles, 100,
                       /*Tick=*/50, 42.0);
  const auto Hists = MetricsRegistry::instance().histogramSnapshot();
  ASSERT_EQ(Hists.size(), 1u);
  EXPECT_EQ(Hists[0].second.Count, 1);
  const auto Wins = MetricsRegistry::instance().windowSnapshot();
  ASSERT_EQ(Wins.size(), 1u);
  EXPECT_EQ(Wins[0].second.Count, 1);
  EXPECT_DOUBLE_EQ(Wins[0].second.Sum, 42.0);
}

TEST_F(MetricsRegistryTest, CycleClockAdvancesAndResets) {
  advanceSimCycles(123);
  advanceSimCycles(77);
  EXPECT_EQ(MetricsRegistry::instance().cycles(), 200);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(MetricsRegistry::instance().cycles(), 0);
}

TEST_F(MetricsRegistryTest, PrometheusRenderCarriesQuantileSamples) {
  for (int I = 1; I <= 100; ++I)
    recordMetric("unit.render-latency", static_cast<double>(I));
  setGauge("unit.render_gauge", 3.5);
  const std::string Text = renderPrometheus();
  EXPECT_NE(Text.find("# TYPE pimflow_unit_render_latency summary"),
            std::string::npos);
  EXPECT_NE(Text.find("pimflow_unit_render_latency{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("pimflow_unit_render_latency{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("pimflow_unit_render_latency_count 100"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE pimflow_unit_render_gauge gauge"),
            std::string::npos);
  // Sanitizer: dots and dashes never reach the exposition.
  EXPECT_EQ(Text.find("unit.render"), std::string::npos);
  EXPECT_EQ(Text.find("render-latency"), std::string::npos);
}

} // namespace
