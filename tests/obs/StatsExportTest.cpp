//===- tests/obs/StatsExportTest.cpp - Stats JSON round-trip ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/StatsExport.h"

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "obs/Json.h"

using namespace pf;
using namespace pf::obs;

namespace {

JsonValue exportAndParse(const CompileResult &R) {
  const std::string Json = renderStatsJson(R);
  std::string Error;
  auto Doc = JsonValue::parse(Json, &Error);
  EXPECT_TRUE(Doc.has_value()) << Error;
  return Doc ? *Doc : JsonValue{};
}

} // namespace

// The emitted document parses back and its numbers are the CompileResult's
// numbers — golden round-trip through the obs::Json parser.
TEST(StatsExportTest, RoundTripMatchesCompileResult) {
  PimFlow Flow(OffloadPolicy::PimFlow);
  const CompileResult R = Flow.compileAndRun(buildToy());
  const JsonValue Doc = exportAndParse(R);

  ASSERT_NE(Doc.find("model"), nullptr);
  EXPECT_EQ(Doc.find("model")->Str, R.Transformed.name());
  ASSERT_NE(Doc.find("policy"), nullptr);
  EXPECT_EQ(Doc.find("policy")->Str, policyName(R.Policy));
  EXPECT_DOUBLE_EQ(Doc.numberOr("end_to_end_ns", -1.0), R.endToEndNs());
  EXPECT_DOUBLE_EQ(Doc.numberOr("energy_j", -1.0), R.energyJ());
  EXPECT_DOUBLE_EQ(Doc.numberOr("conv_layer_ns", -1.0), R.ConvLayerNs);
  EXPECT_DOUBLE_EQ(Doc.numberOr("fc_layer_ns", -1.0), R.FcLayerNs);

  const JsonValue *Tl = Doc.find("timeline");
  ASSERT_NE(Tl, nullptr);
  EXPECT_DOUBLE_EQ(Tl->numberOr("total_ns", -1.0), R.Schedule.TotalNs);
  EXPECT_DOUBLE_EQ(Tl->numberOr("gpu_busy_ns", -1.0), R.Schedule.GpuBusyNs);
  EXPECT_DOUBLE_EQ(Tl->numberOr("pim_busy_ns", -1.0), R.Schedule.PimBusyNs);
  EXPECT_DOUBLE_EQ(Tl->numberOr("energy_j", -1.0), R.Schedule.EnergyJ);

  // The segment census counts every planned segment exactly once.
  const JsonValue *Segments = Doc.find("segments");
  ASSERT_NE(Segments, nullptr);
  const double Census = Segments->numberOr("gpu", 0) +
                        Segments->numberOr("pim", 0) +
                        Segments->numberOr("md_dp", 0) +
                        Segments->numberOr("pipeline", 0);
  EXPECT_DOUBLE_EQ(Census, static_cast<double>(R.Plan.Segments.size()));

  // The derived stats agree with computeStats on the same result.
  const ExecutionStats S = computeStats(R);
  const JsonValue *Stats = Doc.find("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_DOUBLE_EQ(Stats->numberOr("gpu_kernels", -1.0), S.GpuKernels);
  EXPECT_DOUBLE_EQ(Stats->numberOr("pim_kernels", -1.0), S.PimKernels);
  EXPECT_DOUBLE_EQ(Stats->numberOr("gpu_busy_fraction", -1.0),
                   S.GpuBusyFraction);

  ASSERT_NE(Doc.find("counters"), nullptr);
  EXPECT_TRUE(Doc.find("counters")->isObject());
}

// A fault-free run exports no recovery section; a faulted one does, and the
// numbers survive the round-trip.
TEST(StatsExportTest, RecoverySectionOnlyWhenActive) {
  PimFlow Clean(OffloadPolicy::PimFlow);
  const CompileResult R = Clean.compileAndRun(buildToy());
  EXPECT_EQ(exportAndParse(R).find("recovery"), nullptr);

  PimFlowOptions Options;
  Options.FaultSpec = "dead:0";
  PimFlow Faulted(OffloadPolicy::PimFlow, Options);
  const CompileResult RF = Faulted.compileAndRun(buildToy());
  ASSERT_TRUE(RF.Recovery.Active);
  const JsonValue Doc = exportAndParse(RF);
  const JsonValue *Rec = Doc.find("recovery");
  ASSERT_NE(Rec, nullptr);
  EXPECT_DOUBLE_EQ(Rec->numberOr("dead_channels", -1.0),
                   RF.Recovery.DeadChannels);
  EXPECT_DOUBLE_EQ(Rec->numberOr("surviving_channels", -1.0),
                   RF.Recovery.SurvivingChannels);
}

// Precomputed-stats overload emits byte-identical output to the one-arg
// form (both must call computeStats on the same inputs).
TEST(StatsExportTest, PrecomputedStatsOverloadIsIdentical) {
  PimFlow Flow(OffloadPolicy::GpuOnly);
  const CompileResult R = Flow.compileAndRun(buildToy());
  const ExecutionStats S = computeStats(R);
  EXPECT_EQ(renderStatsJson(R), renderStatsJson(R, S));
}
