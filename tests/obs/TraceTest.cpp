//===- tests/obs/TraceTest.cpp - tracer/counter/export tests ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "obs/ChromeTrace.h"
#include "obs/Counters.h"
#include "obs/Json.h"

using namespace pf;

namespace {

/// Every test runs with a clean, enabled observability layer and leaves it
/// disabled (the layer is process-global; tests must not leak state).
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::setObservabilityEnabled(true);
    obs::resetObservability();
  }
  void TearDown() override {
    obs::resetObservability();
    obs::setObservabilityEnabled(false);
  }
};

} // namespace

TEST_F(TraceTest, DisabledScopeRecordsNothing) {
  obs::setObservabilityEnabled(false);
  {
    PF_TRACE_SCOPE("should.not.appear");
    obs::addCounter("should.not.count");
  }
  EXPECT_EQ(obs::Tracer::instance().numEvents(), 0u);
  EXPECT_TRUE(obs::Registry::instance().counterSnapshot().empty());
}

TEST_F(TraceTest, NestedSpansAreContained) {
  {
    PF_TRACE_SCOPE("outer");
    {
      PF_TRACE_SCOPE_CAT("inner", "phase");
    }
  }
  const auto Events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  // Scopes close inner-first.
  const obs::TraceEvent &Inner = Events[0];
  const obs::TraceEvent &Outer = Events[1];
  EXPECT_EQ(Inner.Name, "inner");
  EXPECT_EQ(Inner.Category, "phase");
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_GE(Inner.StartUs, Outer.StartUs);
  EXPECT_LE(Inner.StartUs + Inner.DurUs,
            Outer.StartUs + Outer.DurUs + 1e-6);
  EXPECT_GE(Inner.DurUs, 0.0);
}

TEST_F(TraceTest, SpansFromThreadsGetDistinctTids) {
  auto Spin = [] { PF_TRACE_SCOPE("thread.span"); };
  std::thread A(Spin), B(Spin);
  A.join();
  B.join();
  const auto Events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_NE(Events[0].Tid, Events[1].Tid);
}

TEST_F(TraceTest, CountersAggregateAcrossThreads) {
  constexpr int Threads = 4, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([] {
      for (int I = 0; I < PerThread; ++I)
        obs::addCounter("test.concurrent");
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(obs::Registry::instance().counter("test.concurrent").value(),
            Threads * PerThread);
}

TEST_F(TraceTest, HistogramTracksMinMaxMean) {
  obs::recordHistogram("test.hist", 2.0);
  obs::recordHistogram("test.hist", 6.0);
  obs::recordHistogram("test.hist", 4.0);
  const auto S = obs::Registry::instance().histogram("test.hist").stats();
  EXPECT_EQ(S.Count, 3);
  EXPECT_EQ(S.Min, 2.0);
  EXPECT_EQ(S.Max, 6.0);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
}

TEST_F(TraceTest, ResetZeroesButKeepsReferences) {
  obs::Counter &C = obs::Registry::instance().counter("test.reset");
  C.add(5);
  obs::resetObservability();
  EXPECT_EQ(C.value(), 0);
  C.add(2);
  EXPECT_EQ(obs::Registry::instance().counter("test.reset").value(), 2);
}

TEST_F(TraceTest, ChromeTraceOfToyRunIsValidAndMultiTrack) {
  CompileResult R =
      PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildToy());
  const std::string Doc = obs::renderChromeTrace(R);

  const auto Parsed = obs::JsonValue::parse(Doc);
  ASSERT_TRUE(Parsed.has_value()) << Doc.substr(0, 200);
  const obs::JsonValue *Events = Parsed->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_FALSE(Events->Array.empty());

  // The compile spans recorded above plus the execution timeline must span
  // at least three tracks: compile thread, GPU lane, >=1 PIM channel.
  std::set<std::pair<double, double>> Tracks;
  bool SawCompleteEvent = false;
  for (const obs::JsonValue &E : Events->Array) {
    const obs::JsonValue *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr);
    if (Ph->Str != "X")
      continue;
    SawCompleteEvent = true;
    Tracks.insert({E.numberOr("pid", -1), E.numberOr("tid", -1)});
    EXPECT_GE(E.numberOr("dur", -1.0), 0.0);
    EXPECT_GE(E.numberOr("ts", -1.0), 0.0);
  }
  EXPECT_TRUE(SawCompleteEvent);
  EXPECT_GE(Tracks.size(), 3u);
}
