//===- tests/obs/AttributionTest.cpp - Perf attribution ---------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Attribution.h"

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "models/Zoo.h"
#include "obs/Counters.h"
#include "obs/PerfReport.h"

using namespace pf;
using namespace pf::obs;

namespace {

/// conv(GPU) -> conv(PIM) chain; returns the graph plus both conv ids in
/// topological order.
Graph chainGraph(NodeId &First, NodeId &Second) {
  GraphBuilder B("chain");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId A = B.conv2d(X, 32, 1, 1, 0);
  B.output(B.conv2d(A, 32, 1, 1, 0));
  Graph G = B.take();
  std::vector<NodeId> Convs;
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d)
      Convs.push_back(Id);
  First = Convs.at(0);
  Second = Convs.at(1);
  return G;
}

/// Two independent convs off one input (no dataflow between them).
Graph forkGraph(NodeId &First, NodeId &Second) {
  GraphBuilder B("fork");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId A = B.conv2d(X, 32, 1, 1, 0);
  ValueId C = B.conv2d(X, 32, 1, 1, 0);
  B.output(B.concat({A, C}, 1));
  Graph G = B.take();
  std::vector<NodeId> Convs;
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d)
      Convs.push_back(Id);
  First = Convs.at(0);
  Second = Convs.at(1);
  return G;
}

NodeSchedule sched(NodeId Id, Device Dev, double Start, double End) {
  NodeSchedule S;
  S.Id = Id;
  S.Dev = Dev;
  S.StartNs = Start;
  S.EndNs = End;
  return S;
}

} // namespace

// A hand-built two-node timeline with a cross-device handoff: the chain,
// slack, and lane accounting are all known in closed form.
TEST(AttributionTest, HandBuiltDependencyChain) {
  NodeId A, C;
  Graph G = chainGraph(A, C);
  const SystemConfig Config = SystemConfig::dual();

  Timeline TL;
  TL.Nodes.push_back(sched(A, Device::Gpu, 0.0, 100.0));
  // The PIM consumer starts exactly at producer end + SyncOverheadNs.
  TL.Nodes.push_back(
      sched(C, Device::Pim, 100.0 + Config.SyncOverheadNs,
            300.0 + Config.SyncOverheadNs));
  TL.TotalNs = TL.Nodes.back().EndNs;

  const AttributionReport R = attributeTimeline(G, TL, Config);
  EXPECT_DOUBLE_EQ(R.TotalNs, TL.TotalNs);
  EXPECT_DOUBLE_EQ(R.Critical.LengthNs, TL.TotalNs);

  ASSERT_EQ(R.Critical.Steps.size(), 2u);
  EXPECT_EQ(R.Critical.Steps[0].Id, A);
  EXPECT_EQ(R.Critical.Steps[0].Why, CriticalReason::Start);
  EXPECT_EQ(R.Critical.Steps[0].Blocker, InvalidNode);
  EXPECT_EQ(R.Critical.Steps[1].Id, C);
  EXPECT_EQ(R.Critical.Steps[1].Why, CriticalReason::Dependency);
  EXPECT_EQ(R.Critical.Steps[1].Blocker, A);
  EXPECT_DOUBLE_EQ(R.Critical.GpuNs, 100.0);
  EXPECT_DOUBLE_EQ(R.Critical.PimNs, 200.0);
  // The handoff wait keeps the busy sum under the chain length.
  EXPECT_LT(R.Critical.GpuNs + R.Critical.PimNs, R.Critical.LengthNs);

  // Both nodes are fully constrained: zero slack, both critical.
  ASSERT_EQ(R.Slack.size(), 2u);
  for (const NodeSlack &S : R.Slack) {
    EXPECT_NEAR(S.SlackNs, 0.0, 1e-9);
    EXPECT_TRUE(S.Critical);
  }

  // GPU lane: busy [0,100], one idle hole to the makespan.
  ASSERT_FALSE(R.Lanes.empty());
  const LaneUsage &Gpu = R.Lanes.front();
  EXPECT_EQ(Gpu.Name, "gpu");
  EXPECT_EQ(Gpu.Channel, -1);
  EXPECT_DOUBLE_EQ(Gpu.BusyNs, 100.0);
  EXPECT_DOUBLE_EQ(Gpu.IdleNs, TL.TotalNs - 100.0);
  ASSERT_EQ(Gpu.Gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(Gpu.Gaps[0].StartNs, 100.0);
  EXPECT_DOUBLE_EQ(Gpu.Gaps[0].EndNs, TL.TotalNs);

  // The offloaded conv maps to at least one PIM channel; each channel lane
  // is busy exactly while the node runs, and carries nonzero phase cycles.
  ASSERT_GE(R.Lanes.size(), 2u);
  EXPECT_FALSE(R.Phases.empty());
  for (size_t I = 1; I < R.Lanes.size(); ++I) {
    const LaneUsage &Lane = R.Lanes[I];
    EXPECT_GE(Lane.Channel, 0);
    EXPECT_DOUBLE_EQ(Lane.BusyNs, 200.0);
    EXPECT_DOUBLE_EQ(Lane.IdleNs, TL.TotalNs - 200.0);
  }
  for (const ChannelPhaseCycles &P : R.Phases)
    EXPECT_GT(P.busyCycles(), 0);
}

// Two independent same-lane nodes back to back: the second's start is
// explained by lane occupancy, not a dependency.
TEST(AttributionTest, DeviceBusyReason) {
  NodeId A, C;
  Graph G = forkGraph(A, C);

  Timeline TL;
  TL.Nodes.push_back(sched(A, Device::Gpu, 0.0, 100.0));
  TL.Nodes.push_back(sched(C, Device::Gpu, 100.0, 250.0));
  TL.TotalNs = 250.0;

  const AttributionReport R =
      attributeTimeline(G, TL, SystemConfig::gpuOnly());
  ASSERT_EQ(R.Critical.Steps.size(), 2u);
  EXPECT_EQ(R.Critical.Steps[0].Id, A);
  EXPECT_EQ(R.Critical.Steps[0].Why, CriticalReason::Start);
  EXPECT_EQ(R.Critical.Steps[1].Id, C);
  EXPECT_EQ(R.Critical.Steps[1].Why, CriticalReason::DeviceBusy);
  EXPECT_EQ(R.Critical.Steps[1].Blocker, A);
  EXPECT_DOUBLE_EQ(R.Critical.LengthNs, 250.0);

  // The lane never idles, and the lane-successor constraint makes both
  // nodes critical even without a dataflow edge between them.
  const LaneUsage &Gpu = R.Lanes.front();
  EXPECT_DOUBLE_EQ(Gpu.BusyNs, 250.0);
  EXPECT_TRUE(Gpu.Gaps.empty());
  for (const NodeSlack &S : R.Slack)
    EXPECT_TRUE(S.Critical);
}

TEST(AttributionTest, EmptyTimeline) {
  Graph G("empty");
  Timeline TL;
  const AttributionReport R =
      attributeTimeline(G, TL, SystemConfig::gpuOnly());
  EXPECT_EQ(R.Critical.Steps.size(), 0u);
  EXPECT_TRUE(R.Lanes.empty());
  EXPECT_TRUE(R.Phases.empty());
}

// phaseCyclesOf is hand-checkable: durations are closed-form functions of
// the Table-1 timing parameters.
TEST(AttributionTest, PhaseCyclesHandMath) {
  const PimConfig C = PimConfig::newtonPlusPlus();
  ChannelTrace Trace;
  std::vector<PimCommand> Pattern;
  Pattern.push_back(PimCommand::gwrite(32, 4)); // 128 bursts.
  Pattern.push_back(PimCommand::gact(4));
  Pattern.push_back(PimCommand::comp(512));
  Pattern.push_back(PimCommand::readRes(64));
  const int64_t Repeats = 1000;
  Trace.Blocks.push_back(CommandBlock{Pattern, Repeats});

  const ChannelPhaseCycles P = phaseCyclesOf(C, Trace);
  EXPECT_EQ(P.GwriteCycles, Repeats * (C.TGwrite + 127 * C.TCcdl));
  EXPECT_EQ(P.GactCycles, Repeats * (C.TGact + 3 * C.TRrd));
  EXPECT_EQ(P.CompCycles, Repeats * 512 * C.TComp);
  EXPECT_EQ(P.ReadResCycles, Repeats * (C.TReadRes + 63 * C.TCcdl));
  EXPECT_EQ(P.RetryCycles, 0);
  EXPECT_EQ(P.StallCycles, 0);
  EXPECT_EQ(P.busyCycles(), P.GwriteCycles + P.GactCycles + P.CompCycles +
                                P.ReadResCycles);
  EXPECT_EQ(P.bankBusyCycles(),
            P.GactCycles + P.CompCycles + P.ReadResCycles);
}

// The fault-free device run carries one phase entry per non-empty channel,
// consistent with the standalone accounting and the channel makespan.
TEST(AttributionTest, RunPhasesMatchStandaloneAccounting) {
  PimConfig C = PimConfig::newtonPlusPlus();
  PimSimulator Sim(C);
  DeviceTrace Trace(C.Channels);
  std::vector<PimCommand> Pattern = {PimCommand::gwrite(8, 1),
                                     PimCommand::gact(2),
                                     PimCommand::comp(16),
                                     PimCommand::readRes(4)};
  Trace.Channels[0].Blocks.push_back(CommandBlock{Pattern, 10});
  Trace.Channels[2].Blocks.push_back(CommandBlock{Pattern, 5});

  const PimRunStats Stats = Sim.run(Trace);
  ASSERT_EQ(Stats.ChannelPhases.size(), 2u);
  EXPECT_EQ(Stats.ChannelPhases[0].Channel, 0);
  EXPECT_EQ(Stats.ChannelPhases[1].Channel, 2);
  for (const ChannelPhaseCycles &P : Stats.ChannelPhases) {
    const ChannelTrace &Ch = Trace.Channels[static_cast<size_t>(P.Channel)];
    const ChannelPhaseCycles Ref = phaseCyclesOf(C, Ch);
    EXPECT_EQ(P.GwriteCycles, Ref.GwriteCycles);
    EXPECT_EQ(P.GactCycles, Ref.GactCycles);
    EXPECT_EQ(P.CompCycles, Ref.CompCycles);
    EXPECT_EQ(P.ReadResCycles, Ref.ReadResCycles);
    EXPECT_EQ(P.CompletionCycles, Sim.simulateChannel(Ch));
  }
}

// Faulted run: retry, stall, and dead time land in the right buckets, and
// the per-channel totals agree with the fault outcomes.
TEST(AttributionTest, FaultedRunAttributesRetryAndStallTime) {
  PimConfig C = PimConfig::newtonPlusPlus();
  PimSimulator Sim(C);
  DeviceTrace Trace(C.Channels);
  std::vector<PimCommand> Pattern = {PimCommand::gwrite(8, 1),
                                     PimCommand::gact(2),
                                     PimCommand::comp(16),
                                     PimCommand::readRes(4)};
  for (int Ch : {0, 1, 2})
    Trace.Channels[static_cast<size_t>(Ch)].Blocks.push_back(
        CommandBlock{Pattern, 10});

  FaultModel Faults;
  Faults.addDead(0);
  Faults.addStalled(1);
  Faults.addTransient(TransientFault{2, PimCmdKind::Comp, 3, 2});
  const RetryPolicy Retry;

  const FaultyRunStats R = Sim.runWithFaults(Trace, Faults, Retry);
  ASSERT_EQ(R.Outcomes.size(), 3u);
  ASSERT_EQ(R.Stats.ChannelPhases.size(), 3u);

  // Dead channel: no progress, nothing attributed.
  const ChannelPhaseCycles &Dead = R.Stats.ChannelPhases[0];
  EXPECT_EQ(R.Outcomes[0].Health, ChannelHealth::Dead);
  EXPECT_EQ(Dead.busyCycles(), 0);
  EXPECT_EQ(Dead.CompletionCycles, 0);

  // Stalled channel: the whole watchdog bound is attributed as stall loss.
  const ChannelPhaseCycles &Stalled = R.Stats.ChannelPhases[1];
  EXPECT_EQ(R.Outcomes[1].Health, ChannelHealth::Stalled);
  EXPECT_EQ(Stalled.StallCycles, Retry.WatchdogCycles);
  EXPECT_EQ(Stalled.CompletionCycles, Retry.WatchdogCycles);
  EXPECT_EQ(Stalled.busyCycles(), Retry.WatchdogCycles);

  // Transient channel: retry time is attributed, not folded silently into
  // the makespan, and matches the outcome's accounting exactly.
  const ChannelPhaseCycles &Flaky = R.Stats.ChannelPhases[2];
  EXPECT_EQ(R.Outcomes[2].Health, ChannelHealth::Degraded);
  EXPECT_GT(Flaky.RetryCycles, 0);
  EXPECT_EQ(Flaky.RetryCycles, R.Outcomes[2].RetryCycles);
  EXPECT_EQ(Flaky.RetryCycles, Retry.retryCostCycles(2, C.TComp));
  EXPECT_EQ(Flaky.CompletionCycles, R.Outcomes[2].Cycles);
  EXPECT_EQ(Flaky.CompletionCycles,
            Sim.simulateChannel(Trace.Channels[2]) + Flaky.RetryCycles);
}

TEST(AttributionTest, ExportPhaseCountersNames) {
  const bool WasEnabled = observabilityEnabled();
  setObservabilityEnabled(true);
  resetAll();
  ChannelPhaseCycles P;
  P.Channel = 3;
  P.GwriteCycles = 11;
  P.GactCycles = 22;
  P.CompCycles = 33;
  P.ReadResCycles = 44;
  P.RetryCycles = 55;
  exportPhaseCounters({P});

  const auto Counters = Registry::instance().counterSnapshot();
  auto valueOf = [&](const std::string &Name) -> int64_t {
    for (const auto &[N, V] : Counters)
      if (N == Name)
        return V;
    return -1;
  };
  EXPECT_EQ(valueOf("pim.phase_cycles.gwrite.ch3"), 11);
  EXPECT_EQ(valueOf("pim.phase_cycles.g_act.ch3"), 22);
  EXPECT_EQ(valueOf("pim.phase_cycles.comp.ch3"), 33);
  EXPECT_EQ(valueOf("pim.phase_cycles.readres.ch3"), 44);
  EXPECT_EQ(valueOf("pim.phase_cycles.retry.ch3"), 55);
  // No stall time -> no stall counter.
  EXPECT_EQ(valueOf("pim.phase_cycles.stall.ch3"), -1);
  resetAll();
  setObservabilityEnabled(WasEnabled);
}

// End-to-end consistency on a real compiled model: the acceptance
// invariants of the perf report.
TEST(AttributionTest, EngineConsistencyToy) {
  PimFlow Flow(OffloadPolicy::PimFlow);
  const CompileResult R = Flow.compileAndRun(buildToy());
  const AttributionReport A =
      attributeTimeline(R.Transformed, R.Schedule, R.Config);

  // The critical path explains the whole makespan.
  EXPECT_NEAR(A.Critical.LengthNs, R.Schedule.TotalNs,
              1e-6 * R.Schedule.TotalNs);
  ASSERT_FALSE(A.Critical.Steps.empty());
  EXPECT_EQ(A.Critical.Steps.front().Why, CriticalReason::Start);
  EXPECT_NEAR(A.Critical.Steps.back().EndNs, R.Schedule.TotalNs,
              1e-6 * R.Schedule.TotalNs);
  // Every later step is gated by the previous one.
  for (size_t I = 1; I < A.Critical.Steps.size(); ++I) {
    EXPECT_NE(A.Critical.Steps[I].Why, CriticalReason::Start);
    EXPECT_EQ(A.Critical.Steps[I].Blocker, A.Critical.Steps[I - 1].Id);
  }

  // One slack entry per scheduled node; none negative; the last critical
  // step has zero slack by definition.
  EXPECT_EQ(A.Slack.size(), R.Schedule.Nodes.size());
  for (const NodeSlack &S : A.Slack)
    EXPECT_GE(S.SlackNs, 0.0);

  // The GPU lane's merged busy time matches the engine's own accounting
  // (toy schedules no overlapping GPU slices).
  ASSERT_FALSE(A.Lanes.empty());
  EXPECT_NEAR(A.Lanes.front().BusyNs, R.Schedule.GpuBusyNs,
              1e-6 * std::max(1.0, R.Schedule.GpuBusyNs));

  // The toy plan offloads work, so PIM lanes and phase totals exist.
  EXPECT_GE(A.Lanes.size(), 2u);
  EXPECT_FALSE(A.Phases.empty());
}

// Every node the plan covers appears in the decision trail with the mode
// and ratio the DP chose for its segment.
TEST(AttributionTest, DecisionsCoverPlanSegments) {
  PimFlow Flow(OffloadPolicy::PimFlow);
  const CompileResult R = Flow.compileAndRun(buildToy());
  ASSERT_FALSE(R.Plan.Decisions.empty());

  auto decisionOf = [&](NodeId Id) -> const SearchDecision * {
    for (const SearchDecision &D : R.Plan.Decisions)
      if (D.Id == Id)
        return &D;
    return nullptr;
  };
  for (const SegmentPlan &Seg : R.Plan.Segments) {
    for (NodeId Id : Seg.Nodes) {
      const SearchDecision *D = decisionOf(Id);
      ASSERT_NE(D, nullptr);
      EXPECT_EQ(D->ChosenMode, Seg.Mode);
      if (Seg.Mode == SegmentMode::MdDp) {
        EXPECT_DOUBLE_EQ(D->ChosenRatioGpu, Seg.RatioGpu);
      }
      // Every decision carries at least the GPU-only option, and
      // candidates lead with it.
      ASSERT_FALSE(D->Candidates.empty());
      EXPECT_EQ(D->Candidates.front().Mode, SegmentMode::GpuNode);
      EXPECT_DOUBLE_EQ(D->Candidates.front().Ns, D->GpuOnlyNs);
      if (D->PimCandidate) {
        EXPECT_GT(D->Candidates.size(), 1u);
      }
    }
  }
}

// The JSON report reproduces the attribution invariants after a parse
// round-trip (what pf_perf_diff and `pimflow report` consume).
TEST(AttributionTest, PerfReportRoundTrip) {
  PimFlow Flow(OffloadPolicy::PimFlow);
  const CompileResult R = Flow.compileAndRun(buildToy());
  const std::string Json = renderPerfReport(R);

  std::string Error;
  const auto Doc = JsonValue::parse(Json, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->numberOr("schema_version", 0.0), PerfReportSchemaVersion);
  ASSERT_NE(Doc->find("kind"), nullptr);
  EXPECT_EQ(Doc->find("kind")->Str, "pimflow-perf-report");
  EXPECT_NEAR(Doc->numberOr("end_to_end_ns", -1.0), R.endToEndNs(),
              1e-6 * R.endToEndNs());

  const JsonValue *Critical = Doc->find("critical_path");
  const JsonValue *Tl = Doc->find("timeline");
  ASSERT_NE(Critical, nullptr);
  ASSERT_NE(Tl, nullptr);
  // Acceptance invariant: critical-path length == timeline makespan.
  EXPECT_NEAR(Critical->numberOr("length_ns", -1.0),
              Tl->numberOr("total_ns", -2.0), 1e-6 * R.endToEndNs());

  const JsonValue *Decisions = Doc->find("decisions");
  ASSERT_NE(Decisions, nullptr);
  ASSERT_TRUE(Decisions->isArray());
  EXPECT_EQ(Decisions->Array.size(), R.Plan.Decisions.size());

  const JsonValue *Phases = Doc->find("pim_phases");
  ASSERT_NE(Phases, nullptr);
  ASSERT_TRUE(Phases->isArray());
  // Acceptance invariant: phase buckets sum to the attributed busy time.
  for (const JsonValue &P : Phases->Array) {
    const double Sum = P.numberOr("gwrite_cycles", 0) +
                       P.numberOr("g_act_cycles", 0) +
                       P.numberOr("comp_cycles", 0) +
                       P.numberOr("readres_cycles", 0) +
                       P.numberOr("retry_cycles", 0) +
                       P.numberOr("stall_cycles", 0);
    EXPECT_DOUBLE_EQ(P.numberOr("busy_cycles", -1), Sum);
  }

  // The human rendering covers the same sections.
  const std::string Text = renderPerfReportText(*Doc);
  EXPECT_NE(Text.find("critical path"), std::string::npos);
  EXPECT_NE(Text.find("lane"), std::string::npos);
  EXPECT_NE(Text.find("decision"), std::string::npos);
}

namespace {

JsonValue parseOrDie(const std::string &Text) {
  std::string Error;
  auto Doc = JsonValue::parse(Text, &Error);
  EXPECT_TRUE(Doc.has_value()) << Error;
  return Doc ? *Doc : JsonValue{};
}

} // namespace

TEST(PerfDiffTest, SelfDiffIsClean) {
  const JsonValue Doc = parseOrDie(
      R"({"kind":"pimflow-perf-report","end_to_end_ns":100.0,)"
      R"("energy_j":2.0,"conv_layer_ns":60.0,"fc_layer_ns":10.0})");
  const PerfDiffResult R = perfDiff(Doc, Doc);
  EXPECT_FALSE(R.HasRegression);
  EXPECT_TRUE(R.Notes.empty());
  ASSERT_FALSE(R.Deltas.empty());
  for (const MetricDelta &D : R.Deltas) {
    EXPECT_FALSE(D.Regressed);
    EXPECT_DOUBLE_EQ(D.RelChange, 0.0);
  }
}

TEST(PerfDiffTest, FlagsRegressionBeyondThreshold) {
  const JsonValue Base =
      parseOrDie(R"({"end_to_end_ns":100.0,"energy_j":2.0})");
  const JsonValue Cur =
      parseOrDie(R"({"end_to_end_ns":200.0,"energy_j":2.0})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_TRUE(R.HasRegression);
  bool FoundE2e = false;
  for (const MetricDelta &D : R.Deltas)
    if (D.Name == "end_to_end_ns") {
      FoundE2e = true;
      EXPECT_TRUE(D.Regressed);
      EXPECT_DOUBLE_EQ(D.RelChange, 1.0);
    } else {
      EXPECT_FALSE(D.Regressed);
    }
  EXPECT_TRUE(FoundE2e);

  // A generous threshold lets the same delta through.
  PerfDiffOptions Loose;
  Loose.RelThreshold = 1.5;
  EXPECT_FALSE(perfDiff(Base, Cur, Loose).HasRegression);
}

TEST(PerfDiffTest, ImprovementPasses) {
  const JsonValue Base = parseOrDie(R"({"end_to_end_ns":100.0})");
  const JsonValue Cur = parseOrDie(R"({"end_to_end_ns":10.0})");
  EXPECT_FALSE(perfDiff(Base, Cur).HasRegression);
}

TEST(PerfDiffTest, MissingMetricIsARegression) {
  const JsonValue Base =
      parseOrDie(R"({"end_to_end_ns":100.0,"energy_j":2.0})");
  const JsonValue Cur = parseOrDie(R"({"end_to_end_ns":100.0})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_TRUE(R.HasRegression);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(PerfDiffTest, BenchFormatMatchesRowsByFigureAndKey) {
  const JsonValue Base = parseOrDie(
      R"({"results":[)"
      R"({"figure":"F9","key":"a","end_to_end_ns":100.0,"energy_j":1.0},)"
      R"({"figure":"F9","key":"b","end_to_end_ns":50.0,"energy_j":1.0}]})");
  // Row "a" regresses; row "b" vanishes; a new row "c" is fine.
  const JsonValue Cur = parseOrDie(
      R"({"results":[)"
      R"({"figure":"F9","key":"a","end_to_end_ns":150.0,"energy_j":1.0},)"
      R"({"figure":"F9","key":"c","end_to_end_ns":9.0,"energy_j":1.0}]})");
  const PerfDiffResult R = perfDiff(Base, Cur);
  EXPECT_TRUE(R.HasRegression);
  EXPECT_FALSE(R.Notes.empty());

  bool RegressedA = false;
  for (const MetricDelta &D : R.Deltas)
    if (D.Name == "F9/a.end_to_end_ns")
      RegressedA = D.Regressed;
  EXPECT_TRUE(RegressedA);

  // Identical dumps are clean.
  EXPECT_FALSE(perfDiff(Base, Base).HasRegression);
}
