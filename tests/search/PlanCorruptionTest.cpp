//===- tests/search/PlanCorruptionTest.cpp - artifact fuzzing ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven fuzzing of the plan-artifact parser, in the tests/chaos
/// style: truncations, single-bit flips, version skew, and forged headers.
/// The contract under attack is the replay failure discipline — a damaged
/// artifact must produce a `plan.corrupt` / `plan.version` diagnostic, a
/// key forgery must produce `plan.mismatch`, and under no input may the
/// parser crash, hand back a wrong plan, or let a caller silently re-run
/// the search it was asked to skip.
///
//===----------------------------------------------------------------------===//

#include "plan/PlanArtifact.h"

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Random.h"

using namespace pf;

namespace {

/// One serialized toy artifact, computed once for the whole suite.
const std::string &artifactText() {
  static const std::string Text = [] {
    const Graph G = buildModel("toy");
    Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
    const SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlow, {});
    PlanArtifact A;
    A.Key = makePlanKey(G, systemConfigFor(OffloadPolicy::PimFlow, {}), S,
                        /*FaultFloor=*/1);
    A.Plan = SearchEngine(P, S).search(G);
    return serializePlanArtifact(A);
  }();
  return Text;
}

/// Every rejection must carry one of the plan-artifact codes — anything
/// else (or a crash, which gtest turns into a process failure) means the
/// parser guessed instead of diagnosing.
void expectRejected(const std::string &Mutated, const char *What) {
  DiagnosticEngine DE;
  const auto Parsed = parsePlanArtifact(Mutated, DE);
  EXPECT_FALSE(Parsed) << What << ": mutated artifact parsed successfully";
  EXPECT_TRUE(DE.hasErrors()) << What;
  EXPECT_TRUE(DE.hasCode(DiagCode::PlanCorrupt) ||
              DE.hasCode(DiagCode::PlanVersion))
      << What << ": rejected with the wrong code:\n"
      << DE.render();
}

} // namespace

TEST(PlanCorruption, EveryTruncationIsRejected) {
  const std::string &Text = artifactText();
  // The exact byte count in the header makes any proper prefix detectable.
  // Sweep a deterministic sample of cut points plus every boundary near
  // the header and the tail.
  for (size_t Cut : {size_t{0}, size_t{1}, Text.size() - 1}) {
    expectRejected(Text.substr(0, Cut), "boundary truncation");
  }
  Rng Rand(0xA47EFAC7);
  for (int I = 0; I < 64; ++I) {
    const size_t Cut = Rand.nextBelow(Text.size());
    expectRejected(Text.substr(0, Cut), "random truncation");
  }
}

TEST(PlanCorruption, EverySingleBitFlipIsRejected) {
  const std::string &Text = artifactText();
  Rng Rand(0xB17F11B5);
  for (int I = 0; I < 128; ++I) {
    std::string Mutated = Text;
    const size_t Pos = Rand.nextBelow(Mutated.size());
    Mutated[Pos] = static_cast<char>(
        Mutated[Pos] ^ static_cast<char>(1u << Rand.nextBelow(8)));
    expectRejected(Mutated, "single-bit flip");
  }
}

TEST(PlanCorruption, RandomGarbageIsRejected) {
  Rng Rand(0x6A4BA6E);
  for (int I = 0; I < 32; ++I) {
    std::string Garbage(Rand.nextBelow(4096), '\0');
    for (char &C : Garbage)
      C = static_cast<char>(Rand.next() & 0xFF);
    expectRejected(Garbage, "random garbage");
  }
  expectRejected("", "empty input");
  expectRejected("pimflow-plan", "bare magic");
}

TEST(PlanCorruption, VersionSkewIsPlanVersionNotCorrupt) {
  std::string Mutated = artifactText();
  const size_t Pos = Mutated.find(" v1 ");
  ASSERT_NE(Pos, std::string::npos);
  Mutated.replace(Pos, 4, " v9 ");
  DiagnosticEngine DE;
  EXPECT_FALSE(parsePlanArtifact(Mutated, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::PlanVersion)) << DE.render();
  EXPECT_FALSE(DE.hasCode(DiagCode::PlanCorrupt))
      << "version skew misreported as corruption:\n"
      << DE.render();
}

TEST(PlanCorruption, WrongMagicIsRejected) {
  std::string Mutated = artifactText();
  Mutated.replace(0, std::string("pimflow-plan").size(), "pimflow-graph");
  expectRejected(Mutated, "wrong magic");
}

TEST(PlanCorruption, ForgedKeyParsesButFailsValidation) {
  // A forgery that keeps the checksum honest: parse, swap the graph hash,
  // re-serialize. The artifact is structurally valid — only the replay
  // gate can (and must) catch it, with plan.mismatch.
  DiagnosticEngine DE;
  auto A = parsePlanArtifact(artifactText(), DE);
  ASSERT_TRUE(A) << DE.render();
  const PlanKey Live = A->Key;
  A->Key.GraphHash = "0000000000000000";

  DiagnosticEngine DE2;
  const auto Reparsed = parsePlanArtifact(serializePlanArtifact(*A), DE2);
  ASSERT_TRUE(Reparsed) << DE2.render();
  DiagnosticEngine DE3;
  EXPECT_FALSE(validatePlanKey(Reparsed->Key, Live, DE3));
  EXPECT_TRUE(DE3.hasCode(DiagCode::PlanMismatch)) << DE3.render();
  EXPECT_FALSE(DE3.hasCode(DiagCode::PlanCorrupt));
}

TEST(PlanCorruption, MismatchDiagnosticsNameEachDisagreeingField) {
  DiagnosticEngine DE;
  auto A = parsePlanArtifact(artifactText(), DE);
  ASSERT_TRUE(A) << DE.render();
  const PlanKey Live = A->Key;

  struct Case {
    const char *Field;
    PlanKey Forged;
  };
  PlanKey G = Live, C = Live, S = Live, F = Live;
  G.GraphHash += "x";
  C.ConfigSig += "x";
  S.SearchSig += "x";
  F.FaultFloor += 1;
  for (const Case &K : {Case{"graph", G}, Case{"config", C},
                        Case{"search", S}, Case{"fault floor", F}}) {
    DiagnosticEngine DM;
    EXPECT_FALSE(validatePlanKey(K.Forged, Live, DM)) << K.Field;
    EXPECT_TRUE(DM.hasCode(DiagCode::PlanMismatch)) << K.Field;
    EXPECT_EQ(DM.errorCount(), 1u)
        << K.Field << " forgery produced extra diagnostics:\n"
        << DM.render();
  }
}

TEST(PlanCorruption, ConcatenatedArtifactsAreRejected) {
  // Appending anything (even a second valid artifact) breaks the declared
  // byte count — a spliced file never half-parses.
  expectRejected(artifactText() + artifactText(), "self-concatenation");
  expectRejected(artifactText() + "\n", "trailing newline");
  expectRejected(artifactText() + "junk", "trailing junk");
}
