//===- tests/search/SearchDeterminismTest.cpp - jobs invariance -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search's concurrency contract: for any worker count
/// (SearchOptions::Jobs), the chosen segment plan, every reported cost, and
/// the profiler's cache statistics are identical to the serial search. The
/// plan comparison is byte-wise over a full-precision fingerprint, so even
/// a one-ULP divergence or a differently broken tie fails loudly.
///
//===----------------------------------------------------------------------===//

#include "search/SearchEngine.h"

#include <gtest/gtest.h>
#include <map>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "transform/PatternMatch.h"

using namespace pf;

namespace {

/// Serializes every decision and cost of \p Plan at full precision.
std::string planFingerprint(const ExecutionPlan &Plan) {
  std::string S;
  for (const SegmentPlan &Seg : Plan.Segments) {
    S += segmentModeName(Seg.Mode);
    for (NodeId Id : Seg.Nodes)
      S += formatStr(" n%lld", static_cast<long long>(Id));
    S += formatStr(" r%.17g st%d pat%d ns%.17g;", Seg.RatioGpu, Seg.Stages,
                   static_cast<int>(Seg.Pattern), Seg.PredictedNs);
  }
  S += "|layers:";
  for (const LayerProfile &L : Plan.Layers)
    S += formatStr("n%lld g%.17g p%.17g m%.17g r%.17g;",
                   static_cast<long long>(L.Id), L.GpuNs, L.PimNs,
                   L.BestMdDpNs, L.BestRatioGpu);
  S += formatStr("|total:%.17g", Plan.PredictedNs);
  return S;
}

struct SearchRun {
  std::string Fingerprint;
  size_t Hits = 0;
  size_t Misses = 0;
};

SearchRun runSearch(const Graph &G, int Jobs) {
  Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
  SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlow, {});
  S.Jobs = Jobs;
  const ExecutionPlan Plan = SearchEngine(P, S).search(G);
  return {planFingerprint(Plan), P.cacheHits(), P.cacheMisses()};
}

/// The number of profiler measurements the serial search issues: one GPU
/// sample per node, plus one PIM sample and the interior ratio grid per
/// PIM-candidate layer, plus one sample per consecutive pipeline chain.
size_t serialCandidateCount(const Graph &G) {
  const std::vector<NodeId> Seq = G.topoOrder();
  size_t GridN = 0;
  for (double R = 0.1; R < 1.0 - 1e-9; R += 0.1)
    ++GridN;
  size_t Count = Seq.size();
  for (NodeId Id : Seq)
    if (isPimCandidate(G.node(Id)))
      Count += 1 + GridN;
  std::map<NodeId, size_t> Pos;
  for (size_t I = 0; I < Seq.size(); ++I)
    Pos[Seq[I]] = I;
  for (const PipelineCandidate &Cand : findPipelineCandidates(G)) {
    const size_t Begin = Pos.at(Cand.Chain.front());
    bool Consecutive = true;
    for (size_t I = 0; I < Cand.Chain.size(); ++I)
      Consecutive &=
          Begin + I < Seq.size() && Seq[Begin + I] == Cand.Chain[I];
    if (Consecutive)
      ++Count;
  }
  return Count;
}

} // namespace

class SearchDeterminism : public ::testing::TestWithParam<const char *> {};

TEST_P(SearchDeterminism, ParallelPlanMatchesSerialByteForByte) {
  const Graph G = buildModel(GetParam());
  const SearchRun Serial = runSearch(G, 1);
  const SearchRun Parallel = runSearch(G, 8);
  EXPECT_EQ(Parallel.Fingerprint, Serial.Fingerprint);
  // Single-flight: every unique signature is simulated exactly once and
  // every profiler call resolves to exactly one hit or miss, so the totals
  // match the serial sweep.
  EXPECT_EQ(Parallel.Misses, Serial.Misses);
  EXPECT_EQ(Parallel.Hits + Parallel.Misses, Serial.Hits + Serial.Misses);
  EXPECT_EQ(Serial.Hits + Serial.Misses, serialCandidateCount(G));
}

TEST_P(SearchDeterminism, AutoJobCountMatchesSerial) {
  const Graph G = buildModel(GetParam());
  EXPECT_EQ(runSearch(G, 0).Fingerprint, runSearch(G, 1).Fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Models, SearchDeterminism,
                         ::testing::Values("toy", "mobilenet-v2",
                                           "mnasnet-1.0", "squeezenet-1.1"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '-' || C == '.')
                               C = '_';
                           return Name;
                         });

TEST(SearchDeterminism, RepeatedParallelRunsAreStable) {
  // A flakiness guard: the same parallel search three times in a row.
  const Graph G = buildModel("toy");
  const SearchRun First = runSearch(G, 8);
  for (int I = 0; I < 2; ++I)
    EXPECT_EQ(runSearch(G, 8).Fingerprint, First.Fingerprint);
}

TEST(SearchDeterminism, ParallelRefinementMatchesSerial) {
  // --autotune's refinement samples are centered on the coarse optimum and
  // profile serially after the pre-pass; they must not perturb the
  // invariant.
  const Graph G = buildModel("toy");
  auto Run = [&](int Jobs) {
    Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
    SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlow, {});
    S.RefineRatios = true;
    S.Jobs = Jobs;
    return planFingerprint(SearchEngine(P, S).search(G));
  };
  EXPECT_EQ(Run(8), Run(1));
}

TEST(SearchDeterminism, CompileAndRunMatchesAcrossJobCounts) {
  // End to end through the facade: the transformed graph's timeline agrees.
  PimFlowOptions Serial, Parallel;
  Serial.SearchJobs = 1;
  Parallel.SearchJobs = 8;
  const Graph G = buildModel("toy");
  const CompileResult A = PimFlow(OffloadPolicy::PimFlow, Serial)
                              .compileAndRun(G);
  const CompileResult B = PimFlow(OffloadPolicy::PimFlow, Parallel)
                              .compileAndRun(G);
  EXPECT_EQ(planFingerprint(A.Plan), planFingerprint(B.Plan));
  EXPECT_EQ(A.endToEndNs(), B.endToEndNs());
  EXPECT_EQ(A.energyJ(), B.energyJ());
}
