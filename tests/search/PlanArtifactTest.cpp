//===- tests/search/PlanArtifactTest.cpp - round-trip properties -*- C++-*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan artifact's serialization contract, across the model zoo:
/// serialize → parse → re-serialize is byte-identical, a parsed plan is
/// indistinguishable from the search result it came from (same
/// full-precision fingerprint), and replaying a deserialized plan through
/// PimFlow::executePlan produces exactly the timeline and cost a fresh
/// compileAndRun produces — the property `pimflow run --plan` rides on.
///
//===----------------------------------------------------------------------===//

#include "plan/PlanArtifact.h"

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"

using namespace pf;

namespace {

/// Serializes every decision and cost of \p Plan at full precision (the
/// SearchDeterminismTest fingerprint, extended over the decision trail).
std::string planFingerprint(const ExecutionPlan &Plan) {
  std::string S;
  for (const SegmentPlan &Seg : Plan.Segments) {
    S += segmentModeName(Seg.Mode);
    for (NodeId Id : Seg.Nodes)
      S += formatStr(" n%lld", static_cast<long long>(Id));
    S += formatStr(" r%.17g st%d pat%d ns%.17g;", Seg.RatioGpu, Seg.Stages,
                   static_cast<int>(Seg.Pattern), Seg.PredictedNs);
  }
  S += "|layers:";
  for (const LayerProfile &L : Plan.Layers)
    S += formatStr("n%lld g%.17g p%.17g m%.17g r%.17g;",
                   static_cast<long long>(L.Id), L.GpuNs, L.PimNs,
                   L.BestMdDpNs, L.BestRatioGpu);
  S += "|decisions:";
  for (const SearchDecision &D : Plan.Decisions) {
    S += formatStr("n%lld c%d m%s r%.17g ns%.17g g%.17g[",
                   static_cast<long long>(D.Id), D.PimCandidate ? 1 : 0,
                   segmentModeName(D.ChosenMode), D.ChosenRatioGpu,
                   D.ChosenNs, D.GpuOnlyNs);
    for (const CandidateOption &C : D.Candidates)
      S += formatStr("%s:%.17g:%.17g,", segmentModeName(C.Mode), C.RatioGpu,
                     C.Ns);
    S += "];";
  }
  S += formatStr("|total:%.17g", Plan.PredictedNs);
  return S;
}

PlanArtifact compileArtifact(const std::string &Model) {
  const Graph G = buildModel(Model);
  Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
  const SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlow, {});
  PlanArtifact A;
  A.Key = makePlanKey(G, systemConfigFor(OffloadPolicy::PimFlow, {}), S,
                      /*FaultFloor=*/1);
  A.Plan = SearchEngine(P, S).search(G);
  return A;
}

} // namespace

class PlanArtifactRoundTrip : public ::testing::TestWithParam<const char *> {
};

TEST_P(PlanArtifactRoundTrip, SerializeParseReserializeIsByteIdentical) {
  const PlanArtifact A = compileArtifact(GetParam());
  const std::string Text = serializePlanArtifact(A);

  DiagnosticEngine DE;
  const auto Parsed = parsePlanArtifact(Text, DE);
  ASSERT_TRUE(Parsed) << DE.render();
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_EQ(serializePlanArtifact(*Parsed), Text);
}

TEST_P(PlanArtifactRoundTrip, ParsedPlanIsIndistinguishableFromSearched) {
  const PlanArtifact A = compileArtifact(GetParam());
  DiagnosticEngine DE;
  const auto Parsed = parsePlanArtifact(serializePlanArtifact(A), DE);
  ASSERT_TRUE(Parsed) << DE.render();
  EXPECT_EQ(Parsed->Key, A.Key);
  EXPECT_EQ(planFingerprint(Parsed->Plan), planFingerprint(A.Plan));
}

TEST_P(PlanArtifactRoundTrip, ReplayedPlanMatchesFreshCompileExactly) {
  const Graph G = buildModel(GetParam());
  PimFlow Fresh(OffloadPolicy::PimFlow);
  const CompileResult R = Fresh.compileAndRun(G);

  // Round-trip the fresh plan through the on-disk format, then execute it
  // in a brand-new facade whose profiler has never measured anything.
  DiagnosticEngine DE;
  const auto Parsed =
      parsePlanArtifact(serializePlanArtifact({Fresh.planKey(G), R.Plan}),
                        DE);
  ASSERT_TRUE(Parsed) << DE.render();
  PimFlow Replay(OffloadPolicy::PimFlow);
  ASSERT_TRUE(validatePlanKey(Parsed->Key, Replay.planKey(G), DE))
      << DE.render();
  const CompileResult RR = Replay.executePlan(G, Parsed->Plan);

  EXPECT_EQ(planFingerprint(RR.Plan), planFingerprint(R.Plan));
  EXPECT_EQ(RR.endToEndNs(), R.endToEndNs());
  EXPECT_EQ(RR.energyJ(), R.energyJ());
  EXPECT_EQ(RR.ConvLayerNs, R.ConvLayerNs);
  EXPECT_EQ(RR.FcLayerNs, R.FcLayerNs);
  // The replay ran no search and issued no profiler measurement.
  EXPECT_EQ(Replay.profiler().cacheHits() + Replay.profiler().cacheMisses(),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Models, PlanArtifactRoundTrip,
                         ::testing::Values("toy", "mobilenet-v2",
                                           "mnasnet-1.0", "squeezenet-1.1"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '-' || C == '.')
                               C = '_';
                           return Name;
                         });

TEST(PlanArtifact, SaveLoadRoundTripsThroughDisk) {
  const PlanArtifact A = compileArtifact("toy");
  const std::string Path = ::testing::TempDir() + "pf_plan_roundtrip.plan";
  ASSERT_TRUE(savePlanArtifact(A, Path));

  DiagnosticEngine DE;
  const auto Loaded = loadPlanArtifact(Path, DE);
  ASSERT_TRUE(Loaded) << DE.render();
  EXPECT_EQ(Loaded->Key, A.Key);
  EXPECT_EQ(serializePlanArtifact(*Loaded), serializePlanArtifact(A));
  std::remove(Path.c_str());
}

TEST(PlanArtifact, LoadOfMissingFileIsPlanCorrupt) {
  DiagnosticEngine DE;
  EXPECT_FALSE(
      loadPlanArtifact(::testing::TempDir() + "pf_no_such.plan", DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::PlanCorrupt));
}

TEST(PlanArtifact, DigestIs16HexAndTracksEveryKeyField) {
  PlanKey K{"g", "c", "s", 1};
  EXPECT_EQ(K.digest().size(), 16u);
  EXPECT_EQ(K.digest().find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(K.digest(), (PlanKey{"g", "c", "s", 1}).digest());
  EXPECT_NE(K.digest(), (PlanKey{"G", "c", "s", 1}).digest());
  EXPECT_NE(K.digest(), (PlanKey{"g", "C", "s", 1}).digest());
  EXPECT_NE(K.digest(), (PlanKey{"g", "c", "S", 1}).digest());
  EXPECT_NE(K.digest(), (PlanKey{"g", "c", "s", 2}).digest());
}

TEST(PlanArtifact, GraphHashSeparatesModelsAndTracksEdits) {
  const Graph A = buildModel("toy");
  const Graph B = buildModel("mnasnet-1.0");
  EXPECT_EQ(canonicalGraphHash(A), canonicalGraphHash(buildModel("toy")));
  EXPECT_NE(canonicalGraphHash(A), canonicalGraphHash(B));
}

TEST(PlanArtifact, SearchSigExcludesJobsButTracksEverythingElse) {
  SearchOptions A = searchOptionsFor(OffloadPolicy::PimFlow, {});
  SearchOptions B = A;
  // The determinism contract: the plan is identical for every worker
  // count, so Jobs must NOT invalidate a cached plan.
  B.Jobs = 97;
  EXPECT_EQ(searchOptionsPlanSig(A), searchOptionsPlanSig(B));

  B = A;
  B.AllowPipeline = !B.AllowPipeline;
  EXPECT_NE(searchOptionsPlanSig(A), searchOptionsPlanSig(B));
  B = A;
  B.PipelineStages += 1;
  EXPECT_NE(searchOptionsPlanSig(A), searchOptionsPlanSig(B));
  B = A;
  B.RefineRatios = !B.RefineRatios;
  EXPECT_NE(searchOptionsPlanSig(A), searchOptionsPlanSig(B));
}

TEST(PlanArtifact, ConfigSigTracksProfiledHardwareKnobs) {
  const SystemConfig A = systemConfigFor(OffloadPolicy::PimFlow, {});
  PimFlowOptions O;
  O.PimChannels = 8;
  EXPECT_NE(systemConfigPlanSig(A),
            systemConfigPlanSig(systemConfigFor(OffloadPolicy::PimFlow, O)));
  O = {};
  O.MemoryOptimizer = false;
  EXPECT_NE(systemConfigPlanSig(A),
            systemConfigPlanSig(systemConfigFor(OffloadPolicy::PimFlow, O)));
  O = {};
  O.NumGlobalBuffers = 1;
  EXPECT_NE(systemConfigPlanSig(A),
            systemConfigPlanSig(systemConfigFor(OffloadPolicy::PimFlow, O)));
}

TEST(PlanArtifact, ValidatePlanKeyNamesEveryDifferingField) {
  const PlanKey Live{"g", "c", "s", 1};
  {
    DiagnosticEngine DE;
    EXPECT_TRUE(validatePlanKey(Live, Live, DE));
    EXPECT_FALSE(DE.hasErrors());
  }
  {
    DiagnosticEngine DE;
    EXPECT_FALSE(validatePlanKey(PlanKey{"x", "y", "s", 2}, Live, DE));
    EXPECT_TRUE(DE.hasCode(DiagCode::PlanMismatch));
    // One diagnostic per differing field: graph, config, fault floor.
    EXPECT_EQ(DE.errorCount(), 3u);
  }
}
