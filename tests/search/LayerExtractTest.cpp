//===- tests/search/LayerExtractTest.cpp - extraction tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/LayerExtract.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "models/Zoo.h"

using namespace pf;

TEST(LayerExtractTest, SingleLayerMicrograph) {
  Graph G = buildToy();
  NodeId Conv = InvalidNode;
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d) {
      Conv = Id;
      break;
    }
  ExtractedGraph Micro = extractLayer(G, Conv);
  EXPECT_FALSE(Micro.G.validate().has_value());
  ASSERT_EQ(Micro.Nodes.size(), 1u);
  const Node &N = Micro.G.node(Micro.Nodes[0]);
  EXPECT_EQ(N.Kind, OpKind::Conv2d);
  EXPECT_EQ(N.Attrs, G.node(Conv).Attrs);
  // Shapes preserved.
  EXPECT_EQ(Micro.G.value(N.Outputs[0]).Shape,
            G.value(G.node(Conv).Outputs[0]).Shape);
}

TEST(LayerExtractTest, EndpointsAreGpuStaged) {
  Graph G = buildToy();
  NodeId Conv = G.topoOrder().front();
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d)
      Conv = Id;
  ExtractedGraph Micro = extractLayer(G, Conv);
  // The micrograph stages inputs and outputs through GPU-resident
  // Identity nodes so handoff costs are priced.
  int Identities = 0;
  for (const Node &N : Micro.G.nodes())
    if (!N.Dead && N.Kind == OpKind::Identity) {
      ++Identities;
      EXPECT_EQ(N.Dev, Device::Gpu);
    }
  EXPECT_EQ(Identities, 2); // One input stage + one sink.
}

TEST(LayerExtractTest, ChainExtraction) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.conv2d(X, 8, 1, 1, 0);
  V = B.relu6(V);
  V = B.dwConv(V, 3, 1, 1);
  B.output(V);
  Graph G = B.take();
  ExtractedGraph Micro = extractChain(G, G.topoOrder());
  EXPECT_FALSE(Micro.G.validate().has_value());
  EXPECT_EQ(Micro.Nodes.size(), 3u);
  EXPECT_EQ(Micro.G.graphInputs().size(), 1u);
}

TEST(LayerExtractTest, ParamsBecomeFreshParams) {
  Graph G = buildToy();
  NodeId Gemm = InvalidNode;
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Gemm)
      Gemm = Id;
  ASSERT_NE(Gemm, InvalidNode);
  ExtractedGraph Micro = extractLayer(G, Gemm);
  int Params = 0;
  for (const Value &V : Micro.G.values())
    Params += V.IsParam;
  EXPECT_EQ(static_cast<size_t>(Params) + Micro.G.graphInputs().size(),
            G.node(Gemm).Inputs.size());
}
