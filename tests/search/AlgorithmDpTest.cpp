//===- tests/search/AlgorithmDpTest.cpp - DP decision tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins Algorithm 1's dynamic program against hand-constructed cost
/// landscapes through a stub CostProvider: the search must pick full
/// offload / MD-DP / pipelining exactly when the given costs make them
/// optimal, independent of the simulators.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "ir/Builder.h"
#include "search/SearchEngine.h"

using namespace pf;

namespace {

/// Stub cost provider with per-node dictionaries and a synthetic MD-DP
/// model: mdDp(r) = max(r * Gpu, (1-r) * Pim) + SplitOverhead.
class StubCosts : public CostProvider {
public:
  StubCosts() : Config(SystemConfig::dual()) {}

  const SystemConfig &config() const override { return Config; }

  double gpuNodeNs(const Graph &, NodeId Id) override {
    return Gpu.at(Id);
  }
  double pimNodeNs(const Graph &, NodeId Id) override {
    return Pim.count(Id) ? Pim.at(Id) : 1e12;
  }
  double mdDpNs(const Graph &G, NodeId Id, double R) override {
    if (R <= 0.0)
      return pimNodeNs(G, Id);
    if (R >= 1.0)
      return gpuNodeNs(G, Id);
    return std::max(R * gpuNodeNs(G, Id), (1.0 - R) * pimNodeNs(G, Id)) +
           SplitOverhead;
  }
  double pipelineNs(const Graph &, const std::vector<NodeId> &Chain,
                    int) override {
    auto It = PipelineCosts.find({Chain.front(), Chain.size()});
    return It == PipelineCosts.end() ? -1.0 : It->second;
  }

  SystemConfig Config;
  std::map<NodeId, double> Gpu;
  std::map<NodeId, double> Pim;
  /// Pipeline cost keyed by (first node, chain length).
  std::map<std::pair<NodeId, size_t>, double> PipelineCosts;
  double SplitOverhead = 0.0;
};

/// pw-conv -> relu6 -> dw-conv -> pw-conv: one Type-1 chain prefix plus a
/// trailing candidate.
Graph chainGraph(std::vector<NodeId> *Order) {
  GraphBuilder B("dp");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.conv2d(X, 8, 1, 1, 0);
  V = B.relu6(V);
  V = B.dwConv(V, 3, 1, 1);
  V = B.conv2d(V, 4, 1, 1, 0);
  B.output(V);
  Graph G = B.take();
  if (Order)
    *Order = G.topoOrder();
  return G;
}

SearchOptions allOptions() { return SearchOptions{}; }

} // namespace

TEST(AlgorithmDpTest, PicksGpuWhenPimIsSlow) {
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    Costs.Pim[Id] = 1000.0; // PIM always loses; splits lose too.
  }
  Costs.SplitOverhead = 1000.0;
  SearchEngine S(Costs, allOptions());
  ExecutionPlan Plan = S.search(G);
  for (const SegmentPlan &Seg : Plan.Segments)
    EXPECT_EQ(Seg.Mode, SegmentMode::GpuNode);
  EXPECT_DOUBLE_EQ(Plan.PredictedNs, 100.0 * Order.size());
}

TEST(AlgorithmDpTest, PicksFullOffloadWhenPimWins) {
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    if (isPimCandidate(G.node(Id)))
      Costs.Pim[Id] = 10.0;
  }
  Costs.SplitOverhead = 1000.0; // Splits never profitable.
  SearchEngine S(Costs, allOptions());
  ExecutionPlan Plan = S.search(G);
  for (const SegmentPlan &Seg : Plan.Segments) {
    if (isPimCandidate(G.node(Seg.Nodes[0])) && Seg.Nodes.size() == 1) {
      EXPECT_EQ(Seg.Mode, SegmentMode::FullPim);
    }
  }
}

TEST(AlgorithmDpTest, PicksBalancedSplitAtParity) {
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    if (isPimCandidate(G.node(Id)))
      Costs.Pim[Id] = 100.0; // Parity: optimal split is 50/50 -> 50ns.
  }
  SearchEngine S(Costs, allOptions());
  ExecutionPlan Plan = S.search(G);
  bool SawSplit = false;
  for (const SegmentPlan &Seg : Plan.Segments)
    if (Seg.Mode == SegmentMode::MdDp) {
      SawSplit = true;
      EXPECT_NEAR(Seg.RatioGpu, 0.5, 1e-9);
      EXPECT_NEAR(Seg.PredictedNs, 50.0, 1e-9);
    }
  EXPECT_TRUE(SawSplit);
}

TEST(AlgorithmDpTest, PicksPipelineWhenCheaperThanParts) {
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    if (isPimCandidate(G.node(Id)))
      Costs.Pim[Id] = 90.0;
  }
  // The matcher anchors pw-dw (3 nodes) and pw-dw-pw (4 nodes) chains at
  // the first conv; make pipelining nearly free.
  Costs.PipelineCosts[{Order[0], 3}] = 1.0;
  SearchEngine S(Costs, allOptions());
  ExecutionPlan Plan = S.search(G);
  ASSERT_FALSE(Plan.Segments.empty());
  EXPECT_EQ(Plan.Segments.front().Mode, SegmentMode::Pipeline);
  EXPECT_GE(Plan.Segments.front().Nodes.size(), 3u);
}

TEST(AlgorithmDpTest, IgnoresPipelineWhenExpensive) {
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    if (isPimCandidate(G.node(Id)))
      Costs.Pim[Id] = 50.0;
  }
  Costs.PipelineCosts[{Order[0], 3}] = 1e9;
  Costs.PipelineCosts[{Order[0], 4}] = 1e9;
  SearchEngine S(Costs, allOptions());
  ExecutionPlan Plan = S.search(G);
  for (const SegmentPlan &Seg : Plan.Segments)
    EXPECT_NE(Seg.Mode, SegmentMode::Pipeline);
}

TEST(AlgorithmDpTest, ObjectiveIsMinOverCoverings) {
  // With pipeline cost P for the 3-node prefix and per-node bests B_i, the
  // DP objective must be min(P + rest, sum of per-node bests).
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  ASSERT_EQ(Order.size(), 4u);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    if (isPimCandidate(G.node(Id)))
      Costs.Pim[Id] = 80.0;
  }
  Costs.SplitOverhead = 1000.0;
  // Per-node bests: conv 80 (pim), relu6 100, dw 100, conv 80 = 360.
  // Pipeline over first 3 nodes = 200, then conv 80 -> 280.
  Costs.PipelineCosts[{Order[0], 3}] = 200.0;
  SearchEngine S(Costs, allOptions());
  ExecutionPlan Plan = S.search(G);
  EXPECT_DOUBLE_EQ(Plan.PredictedNs, 280.0);
}

TEST(AlgorithmDpTest, RefinementFindsFinerOptimum) {
  // With asymmetric costs the continuous optimum sits between 10% grid
  // points; refinement must find a strictly better ratio.
  std::vector<NodeId> Order;
  Graph G = chainGraph(&Order);
  StubCosts Costs;
  for (NodeId Id : Order) {
    Costs.Gpu[Id] = 100.0;
    if (isPimCandidate(G.node(Id)))
      Costs.Pim[Id] = 73.0; // Optimum at r = 73/173 ~ 0.422.
  }
  SearchOptions Coarse = allOptions();
  Coarse.AllowPipeline = false;
  SearchOptions Fine = Coarse;
  Fine.RefineRatios = true;
  const double CoarseNs = SearchEngine(Costs, Coarse).search(G).PredictedNs;
  const double FineNs = SearchEngine(Costs, Fine).search(G).PredictedNs;
  EXPECT_LT(FineNs, CoarseNs);
}
