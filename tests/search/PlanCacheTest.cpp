//===- tests/search/PlanCacheTest.cpp - content-addressed cache -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan cache's behavioral contract: repeated compiles of the same
/// (model, config, options, floor) hit; any key ingredient changing —
/// graph edit, SystemConfig tweak, SearchOptions change, fault-floor
/// change — MUST miss; a corrupt cached file is a miss and never a plan;
/// and concurrent same-key compiles are single-flight (one search, every
/// other caller served from the winner's result). The concurrency tests
/// run under ci.sh tier 3's TSan build.
///
//===----------------------------------------------------------------------===//

#include "plan/PlanCache.h"

#include <atomic>
#include <cstdlib>
#include <gtest/gtest.h>
#include <unistd.h>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

using namespace pf;

namespace {

/// A fresh cache directory per test so hit/miss counts start from zero.
std::string freshCacheDir(const char *Name) {
  static std::atomic<int> Counter{0};
  const std::string Dir =
      ::testing::TempDir() +
      formatStr("pf_plan_cache_%s_%d_%d", Name, static_cast<int>(getpid()),
                Counter.fetch_add(1));
  // Left to PlanCache::store to create; remove any stale run's leftovers.
  const std::string Cmd = "rm -rf '" + Dir + "'";
  [[maybe_unused]] const int Rc = std::system(Cmd.c_str());
  return Dir;
}

ExecutionPlan searchPlan(const Graph &G) {
  Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
  return SearchEngine(P, searchOptionsFor(OffloadPolicy::PimFlow, {}))
      .search(G);
}

PlanKey keyFor(const Graph &G, const PimFlowOptions &O = {}) {
  return makePlanKey(G, systemConfigFor(OffloadPolicy::PimFlow, O),
                     searchOptionsFor(OffloadPolicy::PimFlow, O),
                     O.PimFloor);
}

} // namespace

TEST(PlanCache, MissThenStoreThenHit) {
  const Graph G = buildModel("toy");
  const PlanKey Key = keyFor(G);
  PlanCache Cache(freshCacheDir("miss_store_hit"));

  EXPECT_FALSE(Cache.load(Key));
  EXPECT_EQ(Cache.misses(), 1u);

  ASSERT_TRUE(Cache.store(Key, searchPlan(G)));
  EXPECT_EQ(Cache.stores(), 1u);

  const auto Cached = Cache.load(Key);
  ASSERT_TRUE(Cached);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cached->Segments.size(), searchPlan(G).Segments.size());
}

TEST(PlanCache, EveryKeyIngredientInvalidates) {
  const Graph G = buildModel("toy");
  PlanCache Cache(freshCacheDir("invalidation"));
  ASSERT_TRUE(Cache.store(keyFor(G), searchPlan(G)));

  // Graph edit: a different model misses.
  EXPECT_FALSE(Cache.load(keyFor(buildModel("mnasnet-1.0"))));
  // SystemConfig tweak: channel split misses.
  PimFlowOptions Channels;
  Channels.PimChannels = 8;
  EXPECT_FALSE(Cache.load(keyFor(G, Channels)));
  // SystemConfig tweak: memory optimizer off misses.
  PimFlowOptions MemOpt;
  MemOpt.MemoryOptimizer = false;
  EXPECT_FALSE(Cache.load(keyFor(G, MemOpt)));
  // SearchOptions change: stage count misses.
  PimFlowOptions Stages;
  Stages.PipelineStages = 4;
  EXPECT_FALSE(Cache.load(keyFor(G, Stages)));
  // SearchOptions change: autotune refinement misses.
  PimFlowOptions Refine;
  Refine.AutoTuneRatios = true;
  EXPECT_FALSE(Cache.load(keyFor(G, Refine)));
  // Fault-floor change misses even though the search ignores it.
  PimFlowOptions Floor;
  Floor.PimFloor = 3;
  EXPECT_FALSE(Cache.load(keyFor(G, Floor)));

  // ... and the original key still hits.
  EXPECT_TRUE(Cache.load(keyFor(G)));
}

TEST(PlanCache, JobsCountSharesOneCacheEntry) {
  const Graph G = buildModel("toy");
  PimFlowOptions Serial, Parallel;
  Serial.SearchJobs = 1;
  Parallel.SearchJobs = 8;
  // The determinism contract: worker count cannot change the plan, so it
  // must not split the cache either.
  EXPECT_EQ(keyFor(G, Serial).digest(), keyFor(G, Parallel).digest());
}

TEST(PlanCache, CorruptCachedFileIsMissNeverAPlan) {
  const Graph G = buildModel("toy");
  const PlanKey Key = keyFor(G);
  PlanCache Cache(freshCacheDir("corrupt"));
  ASSERT_TRUE(Cache.store(Key, searchPlan(G)));

  // Flip a payload byte in the cached artifact.
  std::FILE *F = std::fopen(Cache.pathFor(Key).c_str(), "r+b");
  ASSERT_NE(F, nullptr);
  std::fseek(F, -10, SEEK_END);
  std::fputc('X', F);
  std::fclose(F);

  EXPECT_FALSE(Cache.load(Key));
  // A recompute-and-store overwrites the damage and hits again.
  ASSERT_TRUE(Cache.store(Key, searchPlan(G)));
  EXPECT_TRUE(Cache.load(Key));
}

TEST(PlanCache, EvictionKeepsTheCacheBounded) {
  const Graph G = buildModel("toy");
  const ExecutionPlan Plan = searchPlan(G);
  PlanCache Cache(freshCacheDir("evict"), /*MaxEntries=*/2);

  PlanKey A = keyFor(G), B = A, C = A;
  B.FaultFloor = 2;
  C.FaultFloor = 3;
  ASSERT_TRUE(Cache.store(A, Plan));
  ASSERT_TRUE(Cache.store(B, Plan));
  ASSERT_TRUE(Cache.store(C, Plan)); // Evicts A, the least recently used.
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_FALSE(Cache.load(A));
  EXPECT_TRUE(Cache.load(B));
  EXPECT_TRUE(Cache.load(C));
}

TEST(PlanCache, GetOrComputeRunsTheSearchOnce) {
  const Graph G = buildModel("toy");
  const PlanKey Key = keyFor(G);
  PlanCache Cache(freshCacheDir("compute_once"));
  std::atomic<int> Computes{0};
  auto Compute = [&] {
    Computes.fetch_add(1);
    return searchPlan(G);
  };

  const ExecutionPlan First = Cache.getOrCompute(Key, Compute);
  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.stores(), 1u);

  // Second call in the same process: served from the in-flight table.
  const ExecutionPlan Second = Cache.getOrCompute(Key, Compute);
  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Second.Segments.size(), First.Segments.size());

  // A brand-new cache instance over the same directory: served from disk.
  PlanCache Fresh(Cache.dir());
  const ExecutionPlan Third = Fresh.getOrCompute(Key, Compute);
  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Fresh.hits(), 1u);
  EXPECT_EQ(Third.Segments.size(), First.Segments.size());
}

TEST(PlanCache, ConcurrentSameKeyCompilesAreSingleFlight) {
  const Graph G = buildModel("toy");
  const PlanKey Key = keyFor(G);
  PlanCache Cache(freshCacheDir("single_flight"));
  std::atomic<int> Computes{0};

  constexpr size_t kCallers = 8;
  std::vector<size_t> SegmentCounts(kCallers, 0);
  ThreadPool Pool(kCallers);
  Pool.parallelFor(kCallers, [&](size_t I) {
    const ExecutionPlan P = Cache.getOrCompute(Key, [&] {
      Computes.fetch_add(1);
      return searchPlan(G);
    });
    SegmentCounts[I] = P.Segments.size();
  });

  // One search ran; the owner took the disk miss, every waiter hit.
  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), kCallers - 1);
  EXPECT_EQ(Cache.stores(), 1u);
  for (size_t I = 1; I < kCallers; ++I)
    EXPECT_EQ(SegmentCounts[I], SegmentCounts[0]);
}

TEST(PlanCache, ConcurrentDistinctKeysDoNotBlockEachOther) {
  const Graph G = buildModel("toy");
  PlanCache Cache(freshCacheDir("distinct_keys"));
  std::atomic<int> Computes{0};

  constexpr size_t kCallers = 6;
  ThreadPool Pool(kCallers);
  Pool.parallelFor(kCallers, [&](size_t I) {
    PlanKey Key = keyFor(G);
    Key.FaultFloor = static_cast<int>(I) + 1; // Distinct content address.
    Cache.getOrCompute(Key, [&] {
      Computes.fetch_add(1);
      return searchPlan(G);
    });
  });
  EXPECT_EQ(Computes.load(), static_cast<int>(kCallers));
  EXPECT_EQ(Cache.stores(), kCallers);
}

TEST(PlanCache, FacadeUsesTheCacheEndToEnd) {
  const Graph G = buildModel("toy");
  PimFlowOptions O;
  O.PlanCacheDir = freshCacheDir("facade");

  PimFlow First(OffloadPolicy::PimFlow, O);
  const CompileResult A = First.compileAndRun(G);
  ASSERT_NE(First.planCache(), nullptr);
  EXPECT_EQ(First.planCache()->misses(), 1u);
  EXPECT_EQ(First.planCache()->stores(), 1u);

  // A second facade over the same directory replays from disk: no search,
  // no profiler traffic, identical execution.
  PimFlow Second(OffloadPolicy::PimFlow, O);
  const CompileResult B = Second.compileAndRun(G);
  EXPECT_EQ(Second.planCache()->hits(), 1u);
  EXPECT_EQ(Second.profiler().cacheHits() + Second.profiler().cacheMisses(),
            0u);
  EXPECT_EQ(B.endToEndNs(), A.endToEndNs());
  EXPECT_EQ(B.energyJ(), A.energyJ());
  EXPECT_EQ(B.ConvLayerNs, A.ConvLayerNs);
}
