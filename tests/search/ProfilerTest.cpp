//===- tests/search/ProfilerTest.cpp - profiler tests -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/Profiler.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

Graph pointwisePair() {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 28, 28, 32});
  ValueId V = B.conv2d(X, 192, 1, 1, 0);
  V = B.relu6(V);
  V = B.conv2d(V, 32, 1, 1, 0);
  B.output(V);
  return B.take();
}

NodeId firstConv(const Graph &G) {
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d)
      return Id;
  return InvalidNode;
}

} // namespace

TEST(ProfilerTest, MeasurementsArePositiveAndDeterministic) {
  Graph G = pointwisePair();
  Profiler P(SystemConfig::dual());
  NodeId Conv = firstConv(G);
  const double Gpu1 = P.gpuNodeNs(G, Conv);
  const double Pim1 = P.pimNodeNs(G, Conv);
  EXPECT_GT(Gpu1, 0.0);
  EXPECT_GT(Pim1, 0.0);
  Profiler Q(SystemConfig::dual());
  EXPECT_EQ(Q.gpuNodeNs(G, Conv), Gpu1);
  EXPECT_EQ(Q.pimNodeNs(G, Conv), Pim1);
}

TEST(ProfilerTest, RatioEndpointsMatchDedicatedSamples) {
  Graph G = pointwisePair();
  Profiler P(SystemConfig::dual());
  NodeId Conv = firstConv(G);
  EXPECT_EQ(P.mdDpNs(G, Conv, 0.0), P.pimNodeNs(G, Conv));
  EXPECT_EQ(P.mdDpNs(G, Conv, 1.0), P.gpuNodeNs(G, Conv));
}

TEST(ProfilerTest, SplitBeatsWorseDevice) {
  // An optimal interior split can never be (much) worse than both
  // endpoints.
  Graph G = pointwisePair();
  Profiler P(SystemConfig::dual());
  NodeId Conv = firstConv(G);
  double Best = 1e300;
  for (double R = 0.1; R < 1.0; R += 0.1)
    Best = std::min(Best, P.mdDpNs(G, Conv, R));
  EXPECT_LT(Best,
            std::max(P.gpuNodeNs(G, Conv), P.pimNodeNs(G, Conv)) * 1.05);
}

TEST(ProfilerTest, CacheDeduplicatesIdenticalLayers) {
  // MobileNetV2 repeats identical blocks: profiling every conv must hit
  // the cache often.
  Graph G = buildMobileNetV2();
  Profiler P(SystemConfig::dual());
  for (NodeId Id : G.topoOrder())
    if (isPimCandidate(G.node(Id)))
      P.gpuNodeNs(G, Id);
  EXPECT_GT(P.cacheHits(), 10u);
  EXPECT_LT(P.cacheMisses(), 30u);
}

TEST(ProfilerTest, CacheSaveLoadRoundTrip) {
  Graph G = pointwisePair();
  const std::string Path = ::testing::TempDir() + "pf_profile_cache.tsv";
  double Gpu, Pim;
  {
    Profiler P(SystemConfig::dual());
    Gpu = P.gpuNodeNs(G, firstConv(G));
    Pim = P.pimNodeNs(G, firstConv(G));
    ASSERT_TRUE(P.saveCache(Path));
  }
  {
    Profiler P(SystemConfig::dual());
    ASSERT_TRUE(P.loadCache(Path));
    EXPECT_NEAR(P.gpuNodeNs(G, firstConv(G)), Gpu, 1e-3);
    EXPECT_NEAR(P.pimNodeNs(G, firstConv(G)), Pim, 1e-3);
    EXPECT_EQ(P.cacheMisses(), 0u);
  }
  std::remove(Path.c_str());
}

TEST(ProfilerTest, DifferentConfigsDifferentCacheKeys) {
  Graph G = pointwisePair();
  Profiler P8(SystemConfig::dual(8));
  Profiler P16(SystemConfig::dual(16));
  // More PIM channels -> faster PIM sample.
  EXPECT_LT(P16.pimNodeNs(G, firstConv(G)),
            P8.pimNodeNs(G, firstConv(G)) * 1.01);
}

TEST(ProfilerTest, PipelineProfileOfValidChain) {
  Graph G = pointwisePair();
  Profiler P(SystemConfig::dual());
  const double Ns = P.pipelineNs(G, G.topoOrder(), 2);
  EXPECT_GT(Ns, 0.0);
}

TEST(ProfilerTest, PipelineProfileOfImpossibleStageCount) {
  GraphBuilder B("tiny");
  ValueId X = B.input("x", TensorShape{1, 3, 3, 2});
  ValueId V = B.conv2d(X, 4, 1, 1, 0);
  V = B.dwConv(V, 3, 1, 1);
  B.output(V);
  Graph G = B.take();
  Profiler P(SystemConfig::dual());
  EXPECT_LT(P.pipelineNs(G, G.topoOrder(), 8), 0.0);
}
