//===- tests/search/SearchEngineTest.cpp - Algorithm 1 tests ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/SearchEngine.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/ShapeInference.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

SearchOptions optionsFor(bool Split, bool Pipeline, bool Offload) {
  SearchOptions O;
  O.AllowSplit = Split;
  O.AllowPipeline = Pipeline;
  O.AllowFullOffload = Offload;
  return O;
}

} // namespace

TEST(SearchEngineTest, GpuOnlySearchKeepsEverythingOnGpu) {
  Graph G = buildToy();
  Profiler P(SystemConfig::gpuOnly());
  SearchEngine S(P, optionsFor(false, false, false));
  ExecutionPlan Plan = S.search(G);
  for (const SegmentPlan &Seg : Plan.Segments)
    EXPECT_EQ(Seg.Mode, SegmentMode::GpuNode);
  EXPECT_TRUE(Plan.Layers.empty()); // No PIM -> no candidate profiles.
}

TEST(SearchEngineTest, SegmentsCoverAllNodesExactlyOnce) {
  Graph G = buildToy();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(true, true, true));
  ExecutionPlan Plan = S.search(G);
  std::vector<NodeId> Covered;
  for (const SegmentPlan &Seg : Plan.Segments)
    for (NodeId Id : Seg.Nodes)
      Covered.push_back(Id);
  std::vector<NodeId> Expected = G.topoOrder();
  std::sort(Covered.begin(), Covered.end());
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(Covered, Expected);
}

TEST(SearchEngineTest, ObjectiveEqualsSegmentSum) {
  Graph G = buildToy();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(true, true, true));
  ExecutionPlan Plan = S.search(G);
  double Sum = 0.0;
  for (const SegmentPlan &Seg : Plan.Segments)
    Sum += Seg.PredictedNs;
  EXPECT_NEAR(Plan.PredictedNs, Sum, 1.0);
}

TEST(SearchEngineTest, RicherOptionSetsNeverWorse) {
  // The DP objective is monotone in the option set (Newton++ <= options of
  // PIMFlow-md <= PIMFlow).
  Graph G = buildMobileNetV2();
  Profiler P(SystemConfig::dual());
  const double Offload =
      SearchEngine(P, optionsFor(false, false, true)).search(G).PredictedNs;
  const double Md =
      SearchEngine(P, optionsFor(true, false, true)).search(G).PredictedNs;
  const double Pl =
      SearchEngine(P, optionsFor(false, true, true)).search(G).PredictedNs;
  const double Full =
      SearchEngine(P, optionsFor(true, true, true)).search(G).PredictedNs;
  EXPECT_LE(Md, Offload + 1e-6);
  EXPECT_LE(Pl, Offload + 1e-6);
  EXPECT_LE(Full, Md + 1e-6);
  EXPECT_LE(Full, Pl + 1e-6);
}

TEST(SearchEngineTest, LayerProfilesRecorded) {
  Graph G = buildToy();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(true, false, true));
  ExecutionPlan Plan = S.search(G);
  // Toy has 2 pointwise convs + 1 regular conv + 1 FC as candidates.
  EXPECT_EQ(Plan.Layers.size(), 4u);
  for (const LayerProfile &L : Plan.Layers) {
    EXPECT_GT(L.GpuNs, 0.0);
    EXPECT_GT(L.PimNs, 0.0);
    EXPECT_LE(L.BestMdDpNs, L.GpuNs);
    EXPECT_LE(L.BestMdDpNs, L.PimNs);
    EXPECT_GE(L.BestRatioGpu, 0.0);
    EXPECT_LE(L.BestRatioGpu, 1.0);
  }
}

TEST(SearchEngineTest, ApplyProducesValidAnnotatedGraph) {
  Graph G = buildToy();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(true, true, true));
  ExecutionPlan Plan = S.search(G);
  SearchEngine::apply(G, Plan);
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_FALSE(inferShapes(G).has_value());
  // Applied MD-DP segments appear as split pairs.
  for (const SegmentPlan &Seg : Plan.Segments) {
    if (Seg.Mode != SegmentMode::MdDp)
      continue;
    EXPECT_TRUE(G.node(Seg.Nodes[0]).Dead);
  }
}

TEST(SearchEngineTest, FullOffloadDisallowedMeansNoPimAnnotation) {
  Graph G = buildToy();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(false, false, false));
  ExecutionPlan Plan = S.search(G);
  for (const SegmentPlan &Seg : Plan.Segments)
    EXPECT_NE(Seg.Mode, SegmentMode::FullPim);
}

TEST(SearchEngineTest, PipelineSegmentsMatchPatterns) {
  Graph G = buildMobileNetV2();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(false, true, true));
  ExecutionPlan Plan = S.search(G);
  int Pipelines = 0;
  for (const SegmentPlan &Seg : Plan.Segments)
    if (Seg.Mode == SegmentMode::Pipeline) {
      ++Pipelines;
      EXPECT_GE(Seg.Nodes.size(), 2u);
      EXPECT_EQ(Seg.Stages, 2);
    }
  EXPECT_GT(Pipelines, 0); // Mobile nets pipeline (Fig. 11).
}

TEST(SearchEngineTest, MnasNetDistributionHasSplitsAndOffloads) {
  // Table 2's shape: a mix of full offloads (ratio 0) and interior splits.
  Graph G = buildMnasNet();
  Profiler P(SystemConfig::dual());
  SearchEngine S(P, optionsFor(true, false, true));
  ExecutionPlan Plan = S.search(G);
  int FullPim = 0, Split = 0;
  for (const SegmentPlan &Seg : Plan.Segments) {
    FullPim += Seg.Mode == SegmentMode::FullPim;
    Split += Seg.Mode == SegmentMode::MdDp;
  }
  EXPECT_GT(FullPim + Split, 10);
  EXPECT_GT(Split, 0);
}
