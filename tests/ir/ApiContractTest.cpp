//===- tests/ir/ApiContractTest.cpp - assertion contracts -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Death tests pinning the library's programmatic-error contracts: misusing
/// the graph API must abort with a diagnostic (assertions stay enabled in
/// optimized builds — the simulators' invariants are the experiment).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "pim/PimCommand.h"
#include "transform/MdDpSplitPass.h"

using namespace pf;

namespace {

Graph tinyGraph() {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  B.output(B.relu(X));
  return B.take();
}

} // namespace

using ApiContractDeathTest = ::testing::Test;

TEST(ApiContractDeathTest, DoubleProducerAborts) {
  Graph G = tinyGraph();
  const ValueId Produced = G.node(G.topoOrder().front()).Outputs[0];
  const ValueId In = G.graphInputs()[0];
  EXPECT_DEATH(G.addNode(OpKind::Relu6, "dup", std::monostate{}, {In},
                         {Produced}),
               "producer");
}

TEST(ApiContractDeathTest, ParamAsOutputAborts) {
  Graph G("t");
  ValueId In = G.addValue("x", TensorShape{4});
  ValueId W = G.addParam("w", TensorShape{4});
  EXPECT_DEATH(
      G.addNode(OpKind::Relu, "bad", std::monostate{}, {In}, {W}),
      "parameters");
}

TEST(ApiContractDeathTest, OutOfRangeValueAborts) {
  Graph G = tinyGraph();
  EXPECT_DEATH(G.value(999), "out of range");
  EXPECT_DEATH(G.node(999), "out of range");
}

TEST(ApiContractDeathTest, DoubleRemoveAborts) {
  Graph G = tinyGraph();
  const NodeId N = G.topoOrder().front();
  G.removeNode(N);
  EXPECT_DEATH(G.removeNode(N), "already removed");
}

TEST(ApiContractDeathTest, ShapeIndexOutOfRangeAborts) {
  TensorShape S{2, 3};
  EXPECT_DEATH(S.dim(5), "out of range");
  Tensor T(TensorShape{2, 2});
  EXPECT_DEATH(T.at(99), "out of range");
}

TEST(ApiContractDeathTest, WrongAttrAccessAborts) {
  Graph G = tinyGraph();
  const Node &N = G.node(G.topoOrder().front()); // A relu.
  EXPECT_DEATH((void)N.conv(), "not a conv");
  EXPECT_DEATH((void)N.gemm(), "not a gemm");
}

TEST(ApiContractDeathTest, SplittingNonCandidateAborts) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  B.output(B.dwConv(X, 3, 1, 1)); // Depthwise: not a PIM candidate.
  Graph G = B.take();
  EXPECT_DEATH(applyMdDpSplit(G, G.topoOrder().front(), 0.5),
               "candidate");
}

TEST(ApiContractDeathTest, InvalidGwriteBufferCountAborts) {
  EXPECT_DEATH(PimCommand::gwrite(4, 3), "1/2/4");
}

TEST(ApiContractDeathTest, BadParamDataShapeAborts) {
  Graph G("t");
  ValueId W = G.addParam("w", TensorShape{4});
  EXPECT_DEATH(G.setParamData(W, Tensor(TensorShape{5})), "mismatch");
}
