//===- tests/ir/MetricsTest.cpp - cost metric tests -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Metrics.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

TEST(MetricsTest, ConvMacs) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 56, 56, 24});
  B.output(B.conv2d(X, 144, 1, 1, 0));
  Graph G = B.take();
  NodeMetrics M = computeMetrics(G, G.topoOrder().front());
  EXPECT_EQ(M.Macs, 56 * 56 * 144 * 24);
  EXPECT_EQ(M.flops(), 2 * M.Macs);
}

TEST(MetricsTest, DepthwiseMacs) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 14, 14, 96});
  B.output(B.dwConv(X, 3, 1, 1));
  Graph G = B.take();
  NodeMetrics M = computeMetrics(G, G.topoOrder().front());
  // Depthwise: one input channel per output.
  EXPECT_EQ(M.Macs, 14 * 14 * 96 * 9);
}

TEST(MetricsTest, GemmMacsAndWeights) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 512});
  B.output(B.gemm(X, 1000));
  Graph G = B.take();
  NodeMetrics M = computeMetrics(G, G.topoOrder().front());
  EXPECT_EQ(M.Macs, 512 * 1000);
  // Weight + bias bytes at f16.
  EXPECT_EQ(M.WeightBytes, (512 * 1000 + 1000) * 2);
}

TEST(MetricsTest, ArithmeticIntensityOrdering) {
  // Fig. 1's premise: a 3x3 conv has much higher arithmetic intensity than
  // an FC layer, with pointwise conv in between.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 28, 28, 128});
  ValueId C3 = B.conv2d(X, 128, 3, 1, 1);
  ValueId C1 = B.conv2d(X, 128, 1, 1, 0);
  B.output(C3);
  B.output(C1);
  ValueId F = B.input("f", TensorShape{1, 4096});
  B.output(B.gemm(F, 4096));
  Graph G = B.take();
  double I3 = 0, I1 = 0, IFc = 0;
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    const double AI = computeMetrics(G, Id).arithmeticIntensity();
    if (N.Kind == OpKind::Gemm)
      IFc = AI;
    else if (N.conv().KernelH == 3)
      I3 = AI;
    else
      I1 = AI;
  }
  EXPECT_GT(I3, I1);
  EXPECT_GT(I1, IFc);
  EXPECT_LT(IFc, 2.0); // FC at batch 1: ~1 MAC per weight element.
}

TEST(MetricsTest, DataMovementHasNoOps) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  B.output(B.slice(X, 1, 0, 4));
  Graph G = B.take();
  NodeMetrics M = computeMetrics(G, G.topoOrder().front());
  EXPECT_EQ(M.Macs, 0);
  EXPECT_EQ(M.OtherOps, 0);
  EXPECT_GT(M.BytesIn, 0);
}

TEST(MetricsTest, GraphAggregation) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  X = B.conv2d(X, 8, 1, 1, 0);
  X = B.relu(X);
  B.output(X);
  Graph G = B.take();
  NodeMetrics Total = computeGraphMetrics(G);
  EXPECT_EQ(Total.Macs, 8 * 8 * 8 * 4);
  EXPECT_EQ(Total.OtherOps, 8 * 8 * 8);
}
