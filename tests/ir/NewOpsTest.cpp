//===- tests/ir/NewOpsTest.cpp - LayerNorm/MatMul coverage ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/GraphSerializer.h"
#include "ir/Metrics.h"
#include "models/Zoo.h"
#include "runtime/Interpreter.h"

using namespace pf;

TEST(NewOpsTest, MatMulShapeInference) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{3, 5});
  ValueId Y = B.input("y", TensorShape{5, 7});
  ValueId Z = B.input("z", TensorShape{7, 5});
  EXPECT_EQ(B.graph().value(B.matmul(X, Y)).Shape, (TensorShape{3, 7}));
  EXPECT_EQ(B.graph().value(B.matmul(X, Z, /*TransposeB=*/true)).Shape,
            (TensorShape{3, 7}));
}

TEST(NewOpsTest, MatMulMetrics) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{64, 768});
  ValueId Y = B.input("y", TensorShape{64, 768});
  B.output(B.matmul(X, Y, /*TransposeB=*/true)); // [64, 64] scores.
  Graph G = B.take();
  NodeMetrics M = computeMetrics(G, G.topoOrder().front());
  EXPECT_EQ(M.Macs, 64 * 768 * 64);
}

TEST(NewOpsTest, MatMulIsNotPimCandidate) {
  // Weight-less matmuls stay on the GPU (no resident matrix to place).
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{4, 8});
  B.output(B.matmul(X, X, true));
  Graph G = B.take();
  EXPECT_FALSE(isPimCandidate(G.node(G.topoOrder().front())));
}

TEST(NewOpsTest, LayerNormMetricsAndShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{8, 768});
  B.output(B.layerNorm(X));
  Graph G = B.take();
  const Node &N = G.node(G.topoOrder().front());
  EXPECT_EQ(N.Inputs.size(), 3u); // x, scale, bias.
  EXPECT_EQ(G.value(N.Outputs[0]).Shape, (TensorShape{8, 768}));
  EXPECT_EQ(computeMetrics(G, N.Id).Macs, 0);
  EXPECT_GT(computeMetrics(G, N.Id).OtherOps, 0);
}

TEST(NewOpsTest, BertRoundTripsThroughSerializer) {
  Graph G = buildBertEncoder(8, /*NumLayers=*/2);
  auto Parsed = parseGraph(serializeGraph(G));
  ASSERT_TRUE(std::holds_alternative<Graph>(Parsed))
      << std::get<std::string>(Parsed);
  Graph &R = std::get<Graph>(Parsed);
  EXPECT_EQ(R.numNodes(), G.numNodes());
  // Functional equality incl. the new ops (seeds survive).
  const Tensor In = Interpreter::randomInput(
      G.value(G.graphInputs()[0]).Shape, 12345);
  const Tensor A = Interpreter(G).run({In}).front();
  const Tensor Bt = Interpreter(R).run({In}).front();
  for (int64_t I = 0; I < A.numElements(); ++I)
    ASSERT_EQ(A.at(I), Bt.at(I));
}

TEST(NewOpsTest, BertAttentionProducesSaneDistributions) {
  // The softmax(Q K^T) rows of the real attention structure sum to one.
  GraphBuilder B("attn");
  ValueId X = B.input("x", TensorShape{4, 16});
  ValueId Q = B.gemm(X, 16);
  ValueId K = B.gemm(X, 16);
  ValueId Scores = B.softmax(B.matmul(Q, K, /*TransposeB=*/true));
  B.output(Scores);
  Graph G = B.take();
  const Tensor In =
      Interpreter::randomInput(TensorShape{4, 16}, 77);
  const Tensor S = Interpreter(G).run({In}).front();
  ASSERT_EQ(S.shape(), (TensorShape{4, 4}));
  for (int64_t R = 0; R < 4; ++R) {
    float Sum = 0.0f;
    for (int64_t C = 0; C < 4; ++C) {
      Sum += S.at(R * 4 + C);
      EXPECT_GE(S.at(R * 4 + C), 0.0f);
    }
    EXPECT_NEAR(Sum, 1.0f, 1e-5);
  }
}

TEST(NewOpsTest, LayerNormInvariantToInputShift) {
  // Property: layernorm(x + c) == layernorm(x) for constant row shifts.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{2, 8});
  B.output(B.layerNorm(X));
  Graph G = B.take();
  Tensor In = Interpreter::randomInput(TensorShape{2, 8}, 5);
  Tensor Shifted = In;
  for (int64_t I = 0; I < Shifted.numElements(); ++I)
    Shifted.at(I) += 3.25f;
  const Tensor A = Interpreter(G).run({In}).front();
  const Tensor Bt = Interpreter(G).run({Shifted}).front();
  for (int64_t I = 0; I < A.numElements(); ++I)
    EXPECT_NEAR(A.at(I), Bt.at(I), 1e-4);
}
