//===- tests/ir/BuilderTest.cpp - graph builder tests -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(BuilderTest, ConvCreatesWeightParam) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 3});
  B.output(B.conv2d(X, 16, 3, 1, 1));
  Graph G = B.take();
  int Params = 0;
  for (const Value &V : G.values())
    Params += V.IsParam;
  EXPECT_EQ(Params, 1);
  // Weight layout [KH, KW, Cin/G, Cout].
  for (const Value &V : G.values())
    if (V.IsParam) {
      EXPECT_EQ(V.Shape, (TensorShape{3, 3, 3, 16}));
    }
}

TEST(BuilderTest, ConvWithBias) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 3});
  B.output(B.conv2d(X, 4, 1, 1, 0, 1, /*WithBias=*/true));
  Graph G = B.take();
  const Node &N = G.node(G.topoOrder().front());
  EXPECT_EQ(N.Inputs.size(), 3u);
  EXPECT_EQ(G.value(N.Inputs[2]).Shape, (TensorShape{4}));
}

TEST(BuilderTest, DepthwiseGroups) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 12});
  B.output(B.dwConv(X, 3, 1, 1));
  Graph G = B.take();
  const Node &N = G.node(G.topoOrder().front());
  EXPECT_EQ(N.conv().Groups, 12);
  EXPECT_TRUE(isDepthwiseConv(N));
}

TEST(BuilderTest, BatchNormHasFourParams) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 8});
  B.output(B.batchNorm(X));
  Graph G = B.take();
  const Node &N = G.node(G.topoOrder().front());
  EXPECT_EQ(N.Inputs.size(), 5u);
}

TEST(BuilderTest, TakeValidates) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  B.output(B.relu(X));
  Graph G = B.take();
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_EQ(G.graphInputs().size(), 1u);
  EXPECT_EQ(G.graphOutputs().size(), 1u);
}

TEST(BuilderTest, NamesAreUnique) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  X = B.relu(X);
  X = B.relu(X);
  B.output(X);
  Graph G = B.take();
  const auto Order = G.topoOrder();
  EXPECT_NE(G.node(Order[0]).Name, G.node(Order[1]).Name);
}
