//===- tests/ir/PrinterTest.cpp - graph printer tests -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/GraphPrinter.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

TEST(PrinterTest, NodeLine) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 3});
  B.output(B.conv2d(X, 16, 3, 2, 1));
  Graph G = B.take();
  const std::string Line = printNode(G, G.topoOrder().front());
  EXPECT_NE(Line.find("conv2d"), std::string::npos);
  EXPECT_NE(Line.find("k=3x3"), std::string::npos);
  EXPECT_NE(Line.find("s=2"), std::string::npos);
  EXPECT_NE(Line.find("[1x4x4x16]"), std::string::npos);
}

TEST(PrinterTest, DeviceAnnotation) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 3});
  B.output(B.conv2d(X, 4, 1, 1, 0));
  Graph G = B.take();
  NodeId N = G.topoOrder().front();
  EXPECT_EQ(printNode(G, N).find("@"), std::string::npos);
  G.node(N).Dev = Device::Pim;
  EXPECT_NE(printNode(G, N).find("@pim"), std::string::npos);
}

TEST(PrinterTest, WholeGraphStructure) {
  GraphBuilder B("mini");
  ValueId X = B.input("img", TensorShape{1, 4, 4, 2});
  B.output(B.relu(X));
  Graph G = B.take();
  const std::string Out = printGraph(G);
  EXPECT_NE(Out.find("graph mini ("), std::string::npos);
  EXPECT_NE(Out.find("%img"), std::string::npos);
  EXPECT_NE(Out.find("return"), std::string::npos);
  EXPECT_NE(Out.find("}\n"), std::string::npos);
}

TEST(PrinterTest, DeadNodesOmitted) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  ValueId R = B.relu(X);
  B.output(B.relu6(R));
  Graph G = B.take();
  const NodeId First = G.topoOrder().front();
  const std::string Before = printGraph(G);
  EXPECT_NE(Before.find("relu("), std::string::npos);
  Graph G2 = G;
  G2.removeNode(G2.topoOrder().back());
  G2.removeNode(First);
  EXPECT_EQ(printGraph(G2).find("relu("), std::string::npos);
}
