//===- tests/ir/ParallelismTest.cpp - parallelism analysis ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parallelism.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "models/Zoo.h"
#include "transform/MdDpSplitPass.h"

using namespace pf;

TEST(ParallelismTest, StraightLineHasNone) {
  GraphBuilder B("line");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 2});
  X = B.relu(X);
  X = B.relu6(X);
  X = B.sigmoid(X);
  B.output(X);
  Graph G = B.take();
  ParallelismStats S = analyzeParallelism(G);
  EXPECT_EQ(S.NumNodes, 3);
  EXPECT_EQ(S.NodesWithIndependentPeer, 0);
  EXPECT_EQ(S.CriticalPathLength, 3);
  EXPECT_DOUBLE_EQ(S.independentFraction(), 0.0);
}

TEST(ParallelismTest, DiamondHasTwoIndependent) {
  GraphBuilder B("diamond");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 2});
  ValueId A = B.relu(X);
  ValueId C = B.relu6(X);
  B.output(B.add(A, C));
  Graph G = B.take();
  ParallelismStats S = analyzeParallelism(G);
  EXPECT_EQ(S.NumNodes, 3);
  EXPECT_EQ(S.NodesWithIndependentPeer, 2); // The two branches.
  EXPECT_EQ(S.CriticalPathLength, 2);
}

TEST(ParallelismTest, EmptyGraph) {
  Graph G("empty");
  ParallelismStats S = analyzeParallelism(G);
  EXPECT_EQ(S.NumNodes, 0);
  EXPECT_DOUBLE_EQ(S.independentFraction(), 0.0);
  EXPECT_DOUBLE_EQ(S.averageWidth(), 0.0);
}

TEST(ParallelismTest, VggIsStraightLine) {
  // Section 3 observation 1: VGG-16 has no inherent inter-node
  // parallelism at all.
  ParallelismStats S = analyzeParallelism(buildVgg16());
  EXPECT_EQ(S.NodesWithIndependentPeer, 0);
  EXPECT_EQ(S.CriticalPathLength, S.NumNodes);
}

TEST(ParallelismTest, ResNetHasSomeFromShortcuts) {
  ParallelismStats S = analyzeParallelism(buildResNet50());
  EXPECT_GT(S.independentFraction(), 0.0);
  // Shortcut convs are a small minority: still mostly sequential.
  EXPECT_LT(S.independentFraction(), 0.5);
  EXPECT_GT(S.CriticalPathLength, 50);
}

TEST(ParallelismTest, MdDpSplitCreatesParallelism) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  B.output(B.conv2d(X, 8, 1, 1, 0));
  Graph G = B.take();
  EXPECT_DOUBLE_EQ(analyzeParallelism(G).independentFraction(), 0.0);
  applyMdDpSplit(G, G.topoOrder().front(), 0.5);
  // The two halves are mutually independent.
  ParallelismStats After = analyzeParallelism(G);
  EXPECT_GT(After.NodesWithIndependentPeer, 0);
}
