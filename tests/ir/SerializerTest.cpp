//===- tests/ir/SerializerTest.cpp - graph save/load tests ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/GraphSerializer.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "models/Zoo.h"
#include "runtime/Interpreter.h"

using namespace pf;

namespace {

Graph roundTrip(const Graph &G) {
  auto Result = parseGraph(serializeGraph(G));
  EXPECT_TRUE(std::holds_alternative<Graph>(Result))
      << std::get<std::string>(Result);
  return std::get<Graph>(std::move(Result));
}

void expectStructurallyEqual(const Graph &A, const Graph &B) {
  ASSERT_EQ(A.numNodes(), B.numNodes());
  ASSERT_EQ(A.graphInputs().size(), B.graphInputs().size());
  ASSERT_EQ(A.graphOutputs().size(), B.graphOutputs().size());
  const auto OA = A.topoOrder();
  const auto OB = B.topoOrder();
  for (size_t I = 0; I < OA.size(); ++I) {
    const Node &NA = A.node(OA[I]);
    const Node &NB = B.node(OB[I]);
    EXPECT_EQ(NA.Kind, NB.Kind);
    EXPECT_EQ(NA.Name, NB.Name);
    EXPECT_EQ(NA.Dev, NB.Dev);
    EXPECT_EQ(NA.Attrs, NB.Attrs);
    ASSERT_EQ(NA.Inputs.size(), NB.Inputs.size());
    for (size_t J = 0; J < NA.Inputs.size(); ++J) {
      EXPECT_EQ(A.value(NA.Inputs[J]).Shape, B.value(NB.Inputs[J]).Shape);
      EXPECT_EQ(A.value(NA.Inputs[J]).IsParam,
                B.value(NB.Inputs[J]).IsParam);
    }
    EXPECT_EQ(A.value(NA.Outputs[0]).Shape, B.value(NB.Outputs[0]).Shape);
  }
}

void expectFunctionallyEqual(const Graph &A, const Graph &B,
                             uint64_t Seed) {
  std::vector<Tensor> InA, InB;
  for (ValueId In : A.graphInputs())
    InA.push_back(Interpreter::randomInput(A.value(In).Shape, Seed));
  for (ValueId In : B.graphInputs())
    InB.push_back(Interpreter::randomInput(B.value(In).Shape, Seed));
  auto OutA = Interpreter(A).run(InA);
  auto OutB = Interpreter(B).run(InB);
  ASSERT_EQ(OutA.size(), OutB.size());
  for (size_t I = 0; I < OutA.size(); ++I)
    for (int64_t E = 0; E < OutA[I].numElements(); ++E)
      ASSERT_EQ(OutA[I].at(E), OutB[I].at(E));
}

} // namespace

TEST(SerializerTest, ToyRoundTrip) {
  Graph G = buildToy();
  Graph R = roundTrip(G);
  EXPECT_EQ(R.name(), "toy");
  expectStructurallyEqual(G, R);
  // Param seeds are serialized, so weights — and therefore outputs —
  // survive the trip exactly.
  expectFunctionallyEqual(G, R, 31);
}

class SerializerModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializerModelTest, ZooRoundTrip) {
  Graph G = buildModel(GetParam());
  Graph R = roundTrip(G);
  expectStructurallyEqual(G, R);
  // Double round trip is byte-stable.
  EXPECT_EQ(serializeGraph(R), serializeGraph(roundTrip(R)));
}

INSTANTIATE_TEST_SUITE_P(AllModels, SerializerModelTest,
                         ::testing::ValuesIn(modelNames()),
                         [](const auto &Info) {
                           std::string N = Info.param;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(SerializerTest, TransformedGraphRoundTrip) {
  // Device annotations and transform-inserted nodes survive.
  Graph Model = buildToy();
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  Graph Loaded = roundTrip(R.Transformed);
  expectStructurallyEqual(R.Transformed, Loaded);
  int PimNodes = 0;
  for (const Node &N : Loaded.nodes())
    PimNodes += !N.Dead && N.Dev == Device::Pim;
  EXPECT_GT(PimNodes, 0);
  expectFunctionallyEqual(R.Transformed, Loaded, 87);
}

TEST(SerializerTest, SaveLoadFile) {
  const std::string Path = ::testing::TempDir() + "pf_graph_test.graph";
  Graph G = buildToy();
  ASSERT_TRUE(saveGraph(G, Path));
  std::string Error;
  auto Loaded = loadGraph(Path, &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  expectStructurallyEqual(G, *Loaded);
  std::remove(Path.c_str());
}

TEST(SerializerTest, MissingFileReportsError) {
  std::string Error;
  EXPECT_FALSE(loadGraph("/nonexistent/path.graph", &Error).has_value());
  EXPECT_FALSE(Error.empty());
}

TEST(SerializerTest, RejectsGarbage) {
  auto R = parseGraph("not a graph at all");
  ASSERT_TRUE(std::holds_alternative<std::string>(R));
}

TEST(SerializerTest, RejectsDanglingValueReference) {
  const std::string Text = "pimflow-graph v1 bad\n"
                           "value 0 x f16 flow 1 2 2 1\n"
                           "node 0 relu r any inputs 7 outputs 0\n"
                           "inputs 0\noutputs 0\nend\n";
  auto R = parseGraph(Text);
  ASSERT_TRUE(std::holds_alternative<std::string>(R));
  EXPECT_NE(std::get<std::string>(R).find("out of range"),
            std::string::npos);
}

TEST(SerializerTest, RejectsUnknownOp) {
  const std::string Text = "pimflow-graph v1 bad\n"
                           "value 0 x f16 flow 4\n"
                           "value 1 y f16 flow 4\n"
                           "node 0 frobnicate f any inputs 0 outputs 1\n"
                           "inputs 0\noutputs 1\nend\n";
  auto R = parseGraph(Text);
  ASSERT_TRUE(std::holds_alternative<std::string>(R));
  EXPECT_NE(std::get<std::string>(R).find("unknown op"),
            std::string::npos);
}

TEST(SerializerTest, RejectsInvalidParsedGraph) {
  // Structurally parseable but no producer for the output.
  const std::string Text = "pimflow-graph v1 bad\n"
                           "value 0 x f16 flow 4\n"
                           "value 1 y f16 flow 4\n"
                           "inputs 0\noutputs 1\nend\n";
  auto R = parseGraph(Text);
  ASSERT_TRUE(std::holds_alternative<std::string>(R));
}

//===----------------------------------------------------------------------===
// Boundary round trips
//===----------------------------------------------------------------------===

TEST(SerializerTest, EmptyGraphRoundTrip) {
  Graph R = roundTrip(Graph("empty"));
  EXPECT_EQ(R.name(), "empty");
  EXPECT_EQ(R.numNodes(), 0u);
  EXPECT_TRUE(R.graphInputs().empty());
  EXPECT_TRUE(R.graphOutputs().empty());
}

TEST(SerializerTest, SingleNodeGraphRoundTrip) {
  GraphBuilder B("one");
  B.output(B.relu(B.input("x", TensorShape{1, 4, 4, 2})));
  Graph G = B.take();
  Graph R = roundTrip(G);
  expectStructurallyEqual(G, R);
  expectFunctionallyEqual(G, R, 5);
}

TEST(SerializerTest, NamesAtTheNoSpaceBoundary) {
  // The format is space-delimited: any space-free name must survive,
  // including punctuation the transforms generate ('.', '/', '=').
  GraphBuilder B("weird.names");
  ValueId X = B.input("in/put.0", TensorShape{1, 4, 4, 2});
  B.output(B.relu(X));
  Graph G = B.take();
  G.node(G.producer(G.graphOutputs()[0])).Name = "relu.part0=odd";
  Graph R = roundTrip(G);
  EXPECT_EQ(R.name(), "weird.names");
  EXPECT_EQ(R.value(R.graphInputs()[0]).Name, "in/put.0");
  EXPECT_EQ(R.node(R.producer(R.graphOutputs()[0])).Name,
            "relu.part0=odd");
}

//===----------------------------------------------------------------------===
// Malformed inputs: diagnostics, not crashes or silent truncation
//===----------------------------------------------------------------------===

namespace {

/// Expects parseGraph(Text) to fail with \p Fragment in the message.
void expectParseError(const std::string &Text, const std::string &Fragment) {
  auto R = parseGraph(Text);
  ASSERT_TRUE(std::holds_alternative<Graph>(R) == false)
      << "accepted: " << Text;
  EXPECT_NE(std::get<std::string>(R).find(Fragment), std::string::npos)
      << "got: " << std::get<std::string>(R);
}

} // namespace

TEST(SerializerTest, RejectsNonIntegerValueId) {
  expectParseError("pimflow-graph v1 g\n"
                   "value zero x f16 flow 4\n"
                   "end\n",
                   "is not an integer");
}

TEST(SerializerTest, RejectsNonIntegerShapeExtent) {
  // atoi-style parsing used to read "4x" as 4.
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 x f16 flow 4x\n"
                   "end\n",
                   "shape extent '4x'");
}

TEST(SerializerTest, RejectsNonPositiveShapeExtent) {
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 x f16 flow 0\n"
                   "end\n",
                   "shape extent '0'");
}

TEST(SerializerTest, RejectsJunkParamSeed) {
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 w f16 param seed7 4\n"
                   "end\n",
                   "init seed 'seed7'");
}

TEST(SerializerTest, RejectsNonIntegerNodeOperand) {
  // atoll("junk") == 0 used to silently wire the node to value 0.
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 x f16 flow 4\n"
                   "value 1 y f16 flow 4\n"
                   "node 0 relu r any inputs junk outputs 1\n"
                   "inputs 0\noutputs 1\nend\n",
                   "input value id 'junk'");
}

TEST(SerializerTest, RejectsNonIntegerAttrValue) {
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 x f16 flow 1 4 4 2\n"
                   "value 1 w f16 param 9 3 3 2 4\n"
                   "value 2 y f16 flow 1 4 4 4\n"
                   "node 0 conv2d c any inputs 0 1 outputs 2 kh=3x kw=3\n"
                   "inputs 0\noutputs 2\nend\n",
                   "attribute kh value '3x'");
}

TEST(SerializerTest, RejectsNonNumericEpsilon) {
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 x f16 flow 1 4 4 2\n"
                   "value 1 y f16 flow 1 4 4 2\n"
                   "node 0 batchnorm b any inputs 0 outputs 1 eps=tiny\n"
                   "inputs 0\noutputs 1\nend\n",
                   "attribute eps value 'tiny'");
}

TEST(SerializerTest, RejectsNonIntegerInterfaceId) {
  expectParseError("pimflow-graph v1 g\n"
                   "value 0 x f16 flow 4\n"
                   "inputs first\noutputs 0\nend\n",
                   "graph interface value id 'first'");
}

TEST(SerializerTest, MalformedInputsNeverCrash) {
  // Truncations and permutations of a valid serialization must all
  // produce a parse error or a valid graph — never a crash.
  GraphBuilder B("t");
  B.output(B.relu(B.input("x", TensorShape{1, 4, 4, 2})));
  const std::string Good = serializeGraph(B.take());
  for (size_t Cut = 0; Cut < Good.size(); Cut += 3) {
    auto R = parseGraph(Good.substr(0, Cut));
    if (std::holds_alternative<Graph>(R)) {
      EXPECT_FALSE(std::get<Graph>(R).validate().has_value());
    }
  }
}
