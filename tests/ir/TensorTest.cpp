//===- tests/ir/TensorTest.cpp - tensor and shape tests ---------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Tensor.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(TensorShapeTest, Basics) {
  TensorShape S{1, 56, 56, 64};
  EXPECT_EQ(S.rank(), 4);
  EXPECT_EQ(S.dim(0), 1);
  EXPECT_EQ(S.dim(3), 64);
  EXPECT_EQ(S.numElements(), 1 * 56 * 56 * 64);
}

TEST(TensorShapeTest, ToString) {
  EXPECT_EQ(TensorShape({1, 2, 3}).toString(), "[1x2x3]");
  EXPECT_EQ(TensorShape({7}).toString(), "[7]");
  EXPECT_EQ(TensorShape{}.toString(), "[]");
}

TEST(TensorShapeTest, Equality) {
  EXPECT_EQ(TensorShape({1, 2}), TensorShape({1, 2}));
  EXPECT_FALSE(TensorShape({1, 2}) == TensorShape({2, 1}));
}

TEST(TensorShapeTest, SetDim) {
  TensorShape S{4, 5};
  S.setDim(1, 9);
  EXPECT_EQ(S.dim(1), 9);
  EXPECT_EQ(S.numElements(), 36);
}

TEST(TensorShapeTest, EmptyShapeHasOneElement) {
  EXPECT_EQ(TensorShape{}.numElements(), 1);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor T(TensorShape{2, 3});
  for (int64_t I = 0; I < T.numElements(); ++I)
    EXPECT_EQ(T.at(I), 0.0f);
}

TEST(TensorTest, At4Layout) {
  // NHWC: channel is fastest varying.
  Tensor T(TensorShape{1, 2, 2, 3});
  T.at4(0, 1, 0, 2) = 5.0f;
  EXPECT_EQ(T.at(1 * 2 * 3 + 0 * 3 + 2), 5.0f);
  T.at4(0, 0, 1, 0) = 7.0f;
  EXPECT_EQ(T.at(3), 7.0f);
}

TEST(TensorTest, ByteSizes) {
  EXPECT_EQ(byteSize(DataType::F32), 4);
  EXPECT_EQ(byteSize(DataType::F16), 2);
  EXPECT_STREQ(dataTypeName(DataType::F16), "f16");
  EXPECT_STREQ(dataTypeName(DataType::F32), "f32");
}
