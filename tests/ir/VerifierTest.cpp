//===- tests/ir/VerifierTest.cpp - Graph verifier mutation tests -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation tests for the graph verifier: start from a well-formed graph,
/// seed one invariant violation through the mutable IR accessors, and
/// assert the verifier reports it with the expected diagnostic code — the
/// acceptance contract for every future transform bug becoming a pinpointed
/// diagnostic instead of a wrong answer.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "models/Zoo.h"
#include "transform/SplitUtil.h"

using namespace pf;

namespace {

/// input -> conv3x3 -> relu -> conv1x1 -> output, all shapes inferred.
Graph convGraph() {
  GraphBuilder B("verifier-fixture");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 3});
  X = B.relu(B.conv2d(X, 8, 3, 1, 1));
  X = B.conv2d(X, 4, 1, 1, 0);
  B.output(X);
  return B.take();
}

/// Finds the first live node of \p Kind.
NodeId findNode(const Graph &G, OpKind Kind) {
  for (const Node &N : G.nodes())
    if (!N.Dead && N.Kind == Kind)
      return N.Id;
  return InvalidNode;
}

/// Runs the verifier and returns the engine for code inspection.
DiagnosticEngine verifyAll(const Graph &G) {
  DiagnosticEngine DE;
  verify(G, DE);
  return DE;
}

} // namespace

TEST(VerifierTest, CleanGraphVerifies) {
  const Graph G = convGraph();
  DiagnosticEngine DE;
  EXPECT_TRUE(verify(G, DE));
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_FALSE(verify(G).has_value());
}

TEST(VerifierTest, ZooModelsVerifyClean) {
  EXPECT_FALSE(verify(buildToy()).has_value());
  EXPECT_FALSE(verify(buildMobileNetV2()).has_value());
}

// Mutation 1/5: dangling ValueId.
TEST(VerifierTest, CatchesDanglingValueId) {
  Graph G = convGraph();
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  G.node(Conv).Inputs[0] = 9999;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyDanglingValue)) << DE.render();
}

// Mutation 2/5: use-before-def (a consumed value nothing produces).
TEST(VerifierTest, CatchesUseBeforeDef) {
  Graph G = convGraph();
  const ValueId Orphan = G.addValue("orphan", TensorShape{1, 8, 8, 3});
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  G.node(Conv).Inputs[0] = Orphan;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyUseBeforeDef)) << DE.render();
}

TEST(VerifierTest, CatchesUseOfDeadProducer) {
  Graph G = convGraph();
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  // Kill the producer without rewiring its consumer.
  G.node(Conv).Dead = true;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyUseBeforeDef)) << DE.render();
}

// Mutation 3/5: stale shape (stored extent disagrees with inference).
TEST(VerifierTest, CatchesStaleShape) {
  Graph G = convGraph();
  const ValueId Out = G.graphOutputs()[0];
  G.value(Out).Shape.setDim(3, 999);
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyStaleShape)) << DE.render();
}

// Mutation 4/5: illegal conv attributes.
TEST(VerifierTest, CatchesZeroStride) {
  Graph G = convGraph();
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  std::get<Conv2dAttrs>(G.node(Conv).Attrs).StrideH = 0;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyIllegalAttrs)) << DE.render();
}

TEST(VerifierTest, CatchesPadNotSmallerThanKernel) {
  Graph G = convGraph();
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  // kernel 3, pad 3: parts of an H-split could read only padding — the
  // degenerate case the split arithmetic cannot handle.
  std::get<Conv2dAttrs>(G.node(Conv).Attrs).PadTop = 3;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyIllegalAttrs)) << DE.render();
}

TEST(VerifierTest, CatchesNegativePadding) {
  Graph G = convGraph();
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  std::get<Conv2dAttrs>(G.node(Conv).Attrs).PadLeft = -1;
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyIllegalAttrs));
}

// Mutation 5/5: overlapping HPieces.
TEST(VerifierTest, CatchesOverlappingHPieces) {
  Graph G("pieces");
  const ValueId A = G.addValue("a", TensorShape{1, 4, 8, 3});
  const ValueId B = G.addValue("b", TensorShape{1, 4, 8, 3});
  DiagnosticEngine DE;
  EXPECT_FALSE(
      checkPieces(G, {HPiece{0, 4, A}, HPiece{2, 6, B}}, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyPieceOverlap)) << DE.render();
}

TEST(VerifierTest, CatchesHPieceGap) {
  Graph G("pieces");
  const ValueId A = G.addValue("a", TensorShape{1, 4, 8, 3});
  const ValueId B = G.addValue("b", TensorShape{1, 4, 8, 3});
  DiagnosticEngine DE;
  EXPECT_FALSE(
      checkPieces(G, {HPiece{0, 4, A}, HPiece{6, 10, B}}, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyPieceGap)) << DE.render();
}

TEST(VerifierTest, CleanHPiecesPass) {
  Graph G("pieces");
  const ValueId A = G.addValue("a", TensorShape{1, 4, 8, 3});
  const ValueId B = G.addValue("b", TensorShape{1, 6, 8, 3});
  DiagnosticEngine DE;
  EXPECT_TRUE(checkPieces(G, {HPiece{0, 4, A}, HPiece{4, 10, B}}, DE));
  EXPECT_FALSE(DE.hasErrors());
}

TEST(VerifierTest, CatchesHPieceHeightMismatch) {
  Graph G("pieces");
  const ValueId A = G.addValue("a", TensorShape{1, 5, 8, 3});
  DiagnosticEngine DE;
  EXPECT_FALSE(checkPieces(G, {HPiece{0, 4, A}}, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyStaleShape)) << DE.render();
}

// Further structural violations beyond the 5 required classes.

TEST(VerifierTest, CatchesDataflowCycle) {
  GraphBuilder B("cycle");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 3});
  ValueId R1 = B.relu(X);
  ValueId R2 = B.relu(R1);
  B.output(R2);
  Graph G = B.take();
  const NodeId First = G.producer(R1);
  // Close the loop: the first relu now consumes the second's output.
  G.node(First).Inputs[0] = R2;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyCycle)) << DE.render();
}

TEST(VerifierTest, CatchesBrokenProducerLink) {
  Graph G = convGraph();
  const NodeId Relu = findNode(G, OpKind::Relu);
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  // The relu claims the conv's output as its own.
  G.node(Relu).Outputs.push_back(G.node(Conv).Outputs[0]);
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyProducerLink)) << DE.render();
}

TEST(VerifierTest, CatchesNodeWithoutOutputs) {
  Graph G = convGraph();
  const NodeId Relu = findNode(G, OpKind::Relu);
  G.node(Relu).Outputs.clear();
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyProducerLink));
}

TEST(VerifierTest, CatchesWhitespaceInName) {
  Graph G = convGraph();
  G.node(findNode(G, OpKind::Relu)).Name = "my relu";
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyBadName));
}

TEST(VerifierTest, CatchesPimOnNonCandidate) {
  GraphBuilder B("device");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  X = B.dwConv(X, 3, 1, 1); // Depthwise: must stay on GPU.
  B.output(X);
  Graph G = B.take();
  G.node(findNode(G, OpKind::Conv2d)).Dev = Device::Pim;
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyDevice));
}

TEST(VerifierTest, CatchesUnproducedGraphOutput) {
  Graph G = convGraph();
  const ValueId Orphan = G.addValue("orphan", TensorShape{1, 4, 4, 4});
  G.setGraphOutputs({Orphan});
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyGraphOutput));
}

TEST(VerifierTest, CatchesAttrStructMismatch) {
  Graph G = convGraph();
  G.node(findNode(G, OpKind::Conv2d)).Attrs = std::monostate{};
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyIllegalAttrs));
}

TEST(VerifierTest, CatchesShapeInferenceRejection) {
  Graph G = convGraph();
  const NodeId Conv = findNode(G, OpKind::Conv2d);
  // Shrink the weight's kernel extent: inference reports a mismatch with
  // the conv's KernelH attribute.
  G.value(G.node(Conv).Inputs[1]).Shape.setDim(0, 2);
  EXPECT_TRUE(verifyAll(G).hasCode(DiagCode::VerifyShapeInfer));
}

TEST(VerifierTest, VerifyCollectsMultipleFindings) {
  Graph G = convGraph();
  G.node(findNode(G, OpKind::Relu)).Name = "bad name";
  std::get<Conv2dAttrs>(G.node(findNode(G, OpKind::Conv2d)).Attrs).Groups =
      0;
  DiagnosticEngine DE;
  EXPECT_FALSE(verify(G, DE));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyBadName));
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyIllegalAttrs));
  EXPECT_GE(DE.errorCount(), 2u);
}

TEST(VerifierTest, VerifyStringWrapperRendersCodes) {
  Graph G = convGraph();
  G.node(findNode(G, OpKind::Conv2d)).Inputs[0] = 9999;
  const auto Rendered = verify(G);
  ASSERT_TRUE(Rendered.has_value());
  EXPECT_NE(Rendered->find("verify.dangling-value"), std::string::npos);
}

TEST(VerifierTest, EmptyGraphVerifies) {
  // No nodes, no outputs: legal (the serializer round-trips it).
  EXPECT_FALSE(verify(Graph("empty")).has_value());
}
