//===- tests/ir/ShapeInferenceTest.cpp - shape inference tests --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ShapeInference.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

TEST(ShapeInferenceTest, ConvOutExtent) {
  // 224 -> stride-2 3x3 pad-1 -> 112.
  EXPECT_EQ(convOutExtent(224, 3, 2, 1, 1), 112);
  // Same-padding 1x1.
  EXPECT_EQ(convOutExtent(56, 1, 1, 0, 0), 56);
  // 7x7 stride 2 pad 3 on 224 -> 112.
  EXPECT_EQ(convOutExtent(224, 7, 2, 3, 3), 112);
  // VGG pool: 224 -> 112.
  EXPECT_EQ(convOutExtent(224, 2, 2, 0, 0), 112);
}

TEST(ShapeInferenceTest, ConvShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 3});
  ValueId C = B.conv2d(X, 16, 3, 2, 1);
  EXPECT_EQ(B.graph().value(C).Shape, (TensorShape{1, 16, 16, 16}));
}

TEST(ShapeInferenceTest, DepthwiseConvShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 14, 14, 96});
  ValueId C = B.dwConv(X, 5, 1, 2);
  EXPECT_EQ(B.graph().value(C).Shape, (TensorShape{1, 14, 14, 96}));
}

TEST(ShapeInferenceTest, AsymmetricPadding) {
  Graph G("asym");
  ValueId X = G.addValue("x", TensorShape{1, 10, 10, 4});
  ValueId W = G.addParam("w", TensorShape{3, 3, 4, 8});
  ValueId O = G.addValue("o", TensorShape{});
  Conv2dAttrs A;
  A.KernelH = A.KernelW = 3;
  A.PadTop = 1;
  A.PadBottom = 0; // Asymmetric: as produced by H-splitting.
  A.PadLeft = A.PadRight = 1;
  NodeId N = G.addNode(OpKind::Conv2d, "c", A, {X, W}, {O});
  EXPECT_FALSE(inferNodeShapes(G, N).has_value());
  EXPECT_EQ(G.value(O).Shape, (TensorShape{1, 9, 10, 8}));
}

TEST(ShapeInferenceTest, GemmShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{4, 128});
  ValueId Y = B.gemm(X, 64);
  EXPECT_EQ(B.graph().value(Y).Shape, (TensorShape{4, 64}));
}

TEST(ShapeInferenceTest, GemmMismatchRejected) {
  Graph G("bad");
  ValueId X = G.addValue("x", TensorShape{1, 10});
  ValueId W = G.addParam("w", TensorShape{11, 5});
  ValueId O = G.addValue("o", TensorShape{});
  NodeId N = G.addNode(OpKind::Gemm, "g", GemmAttrs{}, {X, W}, {O});
  EXPECT_TRUE(inferNodeShapes(G, N).has_value());
}

TEST(ShapeInferenceTest, SliceShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 56, 56, 24});
  ValueId S = B.slice(X, 1, 10, 30);
  EXPECT_EQ(B.graph().value(S).Shape, (TensorShape{1, 20, 56, 24}));
}

TEST(ShapeInferenceTest, SliceRangeValidation) {
  Graph G("bad");
  ValueId X = G.addValue("x", TensorShape{1, 8, 8, 2});
  ValueId O = G.addValue("o", TensorShape{});
  SliceAttrs A;
  A.Axis = 1;
  A.Begin = 4;
  A.End = 12; // Out of range.
  NodeId N = G.addNode(OpKind::Slice, "s", A, {X}, {O});
  EXPECT_TRUE(inferNodeShapes(G, N).has_value());
}

TEST(ShapeInferenceTest, ConcatShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 10, 8, 4});
  ValueId Y = B.input("y", TensorShape{1, 6, 8, 4});
  ValueId C = B.concat({X, Y}, 1);
  EXPECT_EQ(B.graph().value(C).Shape, (TensorShape{1, 16, 8, 4}));
}

TEST(ShapeInferenceTest, ConcatMismatchRejected) {
  Graph G("bad");
  ValueId X = G.addValue("x", TensorShape{1, 4, 8, 2});
  ValueId Y = G.addValue("y", TensorShape{1, 4, 9, 2});
  ValueId O = G.addValue("o", TensorShape{});
  ConcatAttrs A;
  A.Axis = 1;
  NodeId N = G.addNode(OpKind::Concat, "c", A, {X, Y}, {O});
  EXPECT_TRUE(inferNodeShapes(G, N).has_value());
}

TEST(ShapeInferenceTest, PadShapes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 10, 12, 3});
  ValueId P = B.pad(X, 1, 2, 3, 4);
  EXPECT_EQ(B.graph().value(P).Shape, (TensorShape{1, 13, 19, 3}));
}

TEST(ShapeInferenceTest, PoolAndFlatten) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 7, 7, 512});
  ValueId P = B.globalAvgPool(X);
  EXPECT_EQ(B.graph().value(P).Shape, (TensorShape{1, 1, 1, 512}));
  ValueId F = B.flatten(P);
  EXPECT_EQ(B.graph().value(F).Shape, (TensorShape{1, 512}));
}

TEST(ShapeInferenceTest, BroadcastMul) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 14, 14, 96});
  ValueId S = B.input("s", TensorShape{1, 1, 1, 96});
  ValueId M = B.mul(X, S);
  EXPECT_EQ(B.graph().value(M).Shape, (TensorShape{1, 14, 14, 96}));
}

TEST(ShapeInferenceTest, WholeGraphInference) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 3});
  X = B.relu(B.conv2d(X, 8, 3, 1, 1));
  X = B.maxPool(X, 2, 2);
  X = B.flatten(X);
  X = B.gemm(X, 10);
  B.output(X);
  Graph G = B.take();
  // Perturb a shape, re-run inference, expect it restored.
  G.value(G.graphOutputs()[0]).Shape = TensorShape{9, 9};
  EXPECT_FALSE(inferShapes(G).has_value());
  EXPECT_EQ(G.value(G.graphOutputs()[0]).Shape, (TensorShape{1, 10}));
}
