//===- tests/ir/GraphTest.cpp - graph structure tests -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Graph.h"

#include <gtest/gtest.h>

using namespace pf;

namespace {

/// in -> relu -> relu -> out
Graph makeChain() {
  Graph G("chain");
  ValueId In = G.addValue("in", TensorShape{1, 4, 4, 2});
  ValueId Mid = G.addValue("mid", TensorShape{1, 4, 4, 2});
  ValueId Out = G.addValue("out", TensorShape{1, 4, 4, 2});
  G.addNode(OpKind::Relu, "r1", std::monostate{}, {In}, {Mid});
  G.addNode(OpKind::Relu, "r2", std::monostate{}, {Mid}, {Out});
  G.setGraphInputs({In});
  G.setGraphOutputs({Out});
  return G;
}

} // namespace

TEST(GraphTest, ProducerTracking) {
  Graph G = makeChain();
  EXPECT_EQ(G.producer(0), InvalidNode); // Graph input.
  EXPECT_EQ(G.producer(1), 0);
  EXPECT_EQ(G.producer(2), 1);
}

TEST(GraphTest, Consumers) {
  Graph G = makeChain();
  EXPECT_EQ(G.consumers(0), std::vector<NodeId>{0});
  EXPECT_EQ(G.consumers(1), std::vector<NodeId>{1});
  EXPECT_TRUE(G.consumers(2).empty());
}

TEST(GraphTest, TopoOrderIsLinear) {
  Graph G = makeChain();
  EXPECT_EQ(G.topoOrder(), (std::vector<NodeId>{0, 1}));
}

TEST(GraphTest, RemoveNodeFreesOutput) {
  Graph G = makeChain();
  G.removeNode(1);
  EXPECT_EQ(G.producer(2), InvalidNode);
  EXPECT_EQ(G.numNodes(), 1u);
  // The output value can be re-produced by a replacement node.
  G.addNode(OpKind::Identity, "replacement", std::monostate{}, {1}, {2});
  EXPECT_EQ(G.producer(2), 2);
  EXPECT_FALSE(G.validate().has_value());
}

TEST(GraphTest, ValidateCatchesMissingOutput) {
  Graph G = makeChain();
  G.removeNode(1);
  auto Err = G.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("out"), std::string::npos);
}

TEST(GraphTest, ValidateCatchesDanglingConsumer) {
  Graph G = makeChain();
  G.removeNode(0); // r2 now consumes a value with no producer.
  EXPECT_TRUE(G.validate().has_value());
}

TEST(GraphTest, ParamsHaveDistinctSeeds) {
  Graph G("p");
  ValueId A = G.addParam("a", TensorShape{4});
  ValueId B = G.addParam("b", TensorShape{4});
  EXPECT_NE(G.value(A).InitSeed, G.value(B).InitSeed);
  EXPECT_TRUE(G.value(A).IsParam);
}

TEST(GraphTest, ByteCountUsesDataType) {
  Graph G("b");
  ValueId V16 = G.addValue("v16", TensorShape{10}, DataType::F16);
  ValueId V32 = G.addValue("v32", TensorShape{10}, DataType::F32);
  EXPECT_EQ(G.value(V16).byteCount(), 20);
  EXPECT_EQ(G.value(V32).byteCount(), 40);
}

TEST(GraphTest, DiamondTopoOrder) {
  Graph G("diamond");
  ValueId In = G.addValue("in", TensorShape{1, 2, 2, 1});
  ValueId A = G.addValue("a", TensorShape{1, 2, 2, 1});
  ValueId B = G.addValue("b", TensorShape{1, 2, 2, 1});
  ValueId Out = G.addValue("out", TensorShape{1, 2, 2, 1});
  NodeId NA = G.addNode(OpKind::Relu, "a", std::monostate{}, {In}, {A});
  NodeId NB = G.addNode(OpKind::Relu, "b", std::monostate{}, {In}, {B});
  NodeId NAdd = G.addNode(OpKind::Add, "add", std::monostate{}, {A, B},
                          {Out});
  G.setGraphInputs({In});
  G.setGraphOutputs({Out});
  const auto Order = G.topoOrder();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order.back(), NAdd);
  (void)NA;
  (void)NB;
  EXPECT_FALSE(G.validate().has_value());
}

TEST(GraphTest, PimCandidateRules) {
  Graph G("cand");
  ValueId In = G.addValue("in", TensorShape{1, 8, 8, 4});
  ValueId W = G.addParam("w", TensorShape{1, 1, 4, 8});
  ValueId WDw = G.addParam("wdw", TensorShape{3, 3, 1, 4});
  ValueId C1 = G.addValue("c1", TensorShape{1, 8, 8, 8});
  ValueId C2 = G.addValue("c2", TensorShape{1, 8, 8, 4});
  Conv2dAttrs Pw;
  Conv2dAttrs Dw;
  Dw.KernelH = Dw.KernelW = 3;
  Dw.PadTop = Dw.PadBottom = Dw.PadLeft = Dw.PadRight = 1;
  Dw.Groups = 4;
  NodeId NPw = G.addNode(OpKind::Conv2d, "pw", Pw, {In, W}, {C1});
  NodeId NDw = G.addNode(OpKind::Conv2d, "dw", Dw, {In, WDw}, {C2});
  EXPECT_TRUE(isPimCandidate(G.node(NPw)));
  EXPECT_FALSE(isPimCandidate(G.node(NDw)));
  EXPECT_TRUE(isDepthwiseConv(G.node(NDw)));
  EXPECT_FALSE(isDepthwiseConv(G.node(NPw)));
}

TEST(GraphTest, ExplicitParamData) {
  Graph G("pd");
  ValueId W = G.addParam("w", TensorShape{2, 2});
  EXPECT_EQ(G.paramData(W), nullptr);
  Tensor T(TensorShape{2, 2});
  T.at(3) = 1.5f;
  G.setParamData(W, T);
  ASSERT_NE(G.paramData(W), nullptr);
  EXPECT_EQ(G.paramData(W)->at(3), 1.5f);
}
