//===- tests/support/StatsTest.cpp - statistics tests -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(StatsTest, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatsTest, GeomeanLessThanMeanForSpread) {
  std::vector<double> V = {0.5, 2.0, 8.0};
  EXPECT_LT(geomean(V), mean(V));
}

TEST(StatsTest, MinMax) {
  std::vector<double> V = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(minOf(V), -1.0);
  EXPECT_DOUBLE_EQ(maxOf(V), 7.0);
}
