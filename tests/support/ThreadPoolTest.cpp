//===- tests/support/ThreadPoolTest.cpp - worker pool tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <string>

using namespace pf;

namespace {

/// splitmix64: a cheap deterministic per-index value for ordering checks.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

TEST(ThreadPoolTest, CompletesSubmittedTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Sum{0};
  std::vector<std::future<int>> Futs;
  for (int I = 0; I < 100; ++I)
    Futs.push_back(Pool.submit([I, &Sum] {
      Sum.fetch_add(I);
      return I * 2;
    }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futs[static_cast<size_t>(I)].get(), I * 2);
  EXPECT_EQ(Sum.load(), 4950);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), ThreadPool::defaultConcurrency());
  EXPECT_GE(Pool.size(), 1u);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineOnCaller) {
  ThreadPool Pool(1);
  const std::thread::id Caller = std::this_thread::get_id();
  std::thread::id SubmitRan, ForRan;
  Pool.submit([&] { SubmitRan = std::this_thread::get_id(); }).get();
  Pool.parallelFor(3, [&](size_t) { ForRan = std::this_thread::get_id(); });
  EXPECT_EQ(SubmitRan, Caller);
  EXPECT_EQ(ForRan, Caller);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool Pool(2);
  auto Fut = Pool.submit(
      []() -> int { throw std::runtime_error("task failure"); });
  EXPECT_THROW(Fut.get(), std::runtime_error);
  // The pool survives a failed task.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestFailingIndex) {
  // Every index runs and the lowest failing one wins, so the observed
  // exception is the same for any worker count.
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Workers);
    try {
      Pool.parallelFor(64, [](size_t I) {
        if (I % 7 == 3)
          throw std::out_of_range(std::to_string(I));
      });
      FAIL() << "expected an exception (workers=" << Workers << ")";
    } catch (const std::out_of_range &E) {
      EXPECT_STREQ(E.what(), "3") << "workers=" << Workers;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexDespiteFailures) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  EXPECT_THROW(Pool.parallelFor(50,
                                [&](size_t I) {
                                  Ran.fetch_add(1);
                                  if (I == 10)
                                    throw std::runtime_error("one bad index");
                                }),
               std::runtime_error);
  EXPECT_EQ(Ran.load(), 50);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  // A worker re-entering parallelFor must not block on its own queue.
  Pool.parallelFor(8, [&](size_t) {
    Pool.parallelFor(8, [&](size_t) { Count.fetch_add(1); });
  });
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, NestedSubmitIsSafe) {
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  // A task may enqueue further tasks; their futures are waited on from
  // outside the pool.
  auto Outer = Pool.submit([&] {
    std::vector<std::future<void>> Fs;
    for (int I = 0; I < 8; ++I)
      Fs.push_back(Pool.submit([&Inner] { Inner.fetch_add(1); }));
    return Fs;
  });
  for (std::future<void> &F : Outer.get())
    F.get();
  EXPECT_EQ(Inner.load(), 8);
}

TEST(ThreadPoolTest, ParallelForResultsAreOrderingIndependent) {
  constexpr size_t N = 500;
  std::vector<uint64_t> Expected(N);
  for (size_t I = 0; I < N; ++I)
    Expected[I] = mix(I);
  for (unsigned Workers : {1u, 2u, 3u, 8u}) {
    ThreadPool Pool(Workers);
    std::vector<uint64_t> Out(N, 0);
    Pool.parallelFor(N, [&Out](size_t I) { Out[I] = mix(I); });
    EXPECT_EQ(Out, Expected) << "workers=" << Workers;
  }
}

TEST(ThreadPoolTest, ZeroIterationParallelForIsANoOp) {
  ThreadPool Pool(2);
  Pool.parallelFor(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Futs;
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 32; ++I)
      Futs.push_back(Pool.submit([&Ran] { Ran.fetch_add(1); }));
  } // Destructor joins after the queue is empty.
  for (std::future<void> &F : Futs)
    F.get();
  EXPECT_EQ(Ran.load(), 32);
}
