//===- tests/support/StringUtilTest.cpp - string helper tests ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(StringUtilTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string S = "one,two,three";
  EXPECT_EQ(join(split(S, ','), ","), S);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringUtilTest, Prefixes) {
  EXPECT_TRUE(startsWith("conv2d_3", "conv"));
  EXPECT_FALSE(startsWith("conv", "conv2d"));
  EXPECT_TRUE(endsWith("a.out", ".out"));
  EXPECT_FALSE(endsWith("out", "a.out"));
}

TEST(StringUtilTest, ParseIntAcceptsStrictDecimals) {
  EXPECT_EQ(parseInt("0"), 0);
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_EQ(parseInt("+13"), 13);
  EXPECT_EQ(parseInt("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parseInt("-9223372036854775808"), INT64_MIN);
}

TEST(StringUtilTest, ParseIntRejectsJunk) {
  EXPECT_FALSE(parseInt(""));
  EXPECT_FALSE(parseInt("abc"));
  EXPECT_FALSE(parseInt("12x"));   // atoi would return 12.
  EXPECT_FALSE(parseInt("x12"));   // atoi would return 0.
  EXPECT_FALSE(parseInt(" 3"));    // No implicit whitespace skipping.
  EXPECT_FALSE(parseInt("3 "));
  EXPECT_FALSE(parseInt("+"));
  EXPECT_FALSE(parseInt("-"));
  EXPECT_FALSE(parseInt("+-3"));
  EXPECT_FALSE(parseInt("1.5"));
  EXPECT_FALSE(parseInt("0x10"));
}

TEST(StringUtilTest, ParseIntRejectsOverflow) {
  EXPECT_FALSE(parseInt("9223372036854775808"));  // INT64_MAX + 1.
  EXPECT_FALSE(parseInt("-9223372036854775809")); // INT64_MIN - 1.
  EXPECT_FALSE(parseInt("999999999999999999999999"));
}

TEST(StringUtilTest, ParseUintAcceptsFullRange) {
  EXPECT_EQ(parseUint("0"), 0u);
  EXPECT_EQ(parseUint("18446744073709551615"), UINT64_MAX);
}

TEST(StringUtilTest, ParseUintRejectsSignsAndJunk) {
  EXPECT_FALSE(parseUint("-1").has_value());
  EXPECT_FALSE(parseUint("+1").has_value());
  EXPECT_FALSE(parseUint("12x").has_value());
  EXPECT_FALSE(parseUint("").has_value());
  EXPECT_FALSE(parseUint("18446744073709551616").has_value()); // 2^64
}
