//===- tests/support/StringUtilTest.cpp - string helper tests ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(StringUtilTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string S = "one,two,three";
  EXPECT_EQ(join(split(S, ','), ","), S);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringUtilTest, Prefixes) {
  EXPECT_TRUE(startsWith("conv2d_3", "conv"));
  EXPECT_FALSE(startsWith("conv", "conv2d"));
  EXPECT_TRUE(endsWith("a.out", ".out"));
  EXPECT_FALSE(endsWith("out", "a.out"));
}
