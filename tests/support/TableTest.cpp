//===- tests/support/TableTest.cpp - table printer tests --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(TableTest, HeaderUnderlined) {
  Table T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  const std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
  EXPECT_NE(Out.find("x"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  Table T;
  T.setHeader({"mechanism", "t"});
  T.addRow({"Newton+", "1.00"});
  T.addRow({"PIMFlow", "0.75"});
  const std::string Out = T.render();
  // Both numeric cells end at the same column (right aligned).
  size_t Line1 = Out.find("Newton+");
  size_t Line2 = Out.find("PIMFlow");
  ASSERT_NE(Line1, std::string::npos);
  ASSERT_NE(Line2, std::string::npos);
  std::string Row1 = Out.substr(Line1, Out.find('\n', Line1) - Line1);
  std::string Row2 = Out.substr(Line2, Out.find('\n', Line2) - Line2);
  EXPECT_EQ(Row1.size(), Row2.size());
}

TEST(TableTest, ShortRowsAllowed) {
  Table T;
  T.setHeader({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_NE(T.render().find("only"), std::string::npos);
}

TEST(TableTest, NoTrailingWhitespace) {
  Table T;
  T.setHeader({"a", "b"});
  T.addRow({"x", ""});
  for (const std::string &Line : {T.render()}) {
    size_t Pos = 0;
    while ((Pos = Line.find('\n', Pos)) != std::string::npos) {
      if (Pos > 0) {
        EXPECT_NE(Line[Pos - 1], ' ');
      }
      ++Pos;
    }
  }
}
