//===- tests/support/DiagnosticsTest.cpp - Diagnostics engine ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "support/Diagnostics.h"

using namespace pf;

TEST(DiagnosticsTest, CodesRenderAsDottedSlugs) {
  EXPECT_STREQ(diagCodeName(DiagCode::BadOption), "cli.bad-option");
  EXPECT_STREQ(diagCodeName(DiagCode::VerifyUseBeforeDef),
               "verify.use-before-def");
  EXPECT_STREQ(diagCodeName(DiagCode::VerifyPieceOverlap),
               "verify.piece-overlap");
  EXPECT_STREQ(diagCodeName(DiagCode::ParseRecord), "parse.record");
}

TEST(DiagnosticsTest, RenderIncludesSeverityCodeContextMessage) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::VerifyUseBeforeDef;
  D.Context = "node 'conv1'";
  D.Message = "consumes value 'x' with no producer";
  EXPECT_EQ(D.render(), "error[verify.use-before-def] node 'conv1': "
                        "consumes value 'x' with no producer");
}

TEST(DiagnosticsTest, RenderWithoutContextOmitsTheColon) {
  Diagnostic D;
  D.Code = DiagCode::ParseHeader;
  D.Message = "missing header";
  EXPECT_EQ(D.render(), "error[parse.header] missing header");
}

TEST(DiagnosticsTest, CollectsInsteadOfThrowing) {
  DiagnosticEngine DE;
  EXPECT_FALSE(DE.hasErrors());
  DE.error(DiagCode::VerifyCycle, "node 'a'", "cycle");
  DE.warning(DiagCode::VerifyBadName, "node 'b'", "odd name");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u); // Warnings do not count as errors.
  ASSERT_EQ(DE.diagnostics().size(), 2u);
  EXPECT_EQ(DE.diagnostics()[0].Severity, DiagSeverity::Error);
  EXPECT_EQ(DE.diagnostics()[1].Severity, DiagSeverity::Warning);
}

TEST(DiagnosticsTest, HasCodeFindsCollectedCodes) {
  DiagnosticEngine DE;
  DE.error(DiagCode::VerifyStaleShape, "value 'v'", "stale");
  EXPECT_TRUE(DE.hasCode(DiagCode::VerifyStaleShape));
  EXPECT_FALSE(DE.hasCode(DiagCode::VerifyCycle));
}

TEST(DiagnosticsTest, CapSuppressesButKeepsCounting) {
  DiagnosticEngine DE(/*MaxErrors=*/3);
  for (int I = 0; I < 10; ++I)
    DE.error(DiagCode::ParseRecord, "line 1", "bad");
  EXPECT_EQ(DE.diagnostics().size(), 3u);
  EXPECT_EQ(DE.errorCount(), 10u);
  EXPECT_TRUE(DE.atLimit());
  const std::string Out = DE.render();
  EXPECT_NE(Out.find("7 more diagnostic(s) suppressed"), std::string::npos);
}

TEST(DiagnosticsTest, NoSuppressionTrailerUnderTheCap) {
  DiagnosticEngine DE(/*MaxErrors=*/3);
  DE.error(DiagCode::ParseRecord, "line 2", "bad");
  EXPECT_EQ(DE.render().find("suppressed"), std::string::npos);
  EXPECT_FALSE(DE.atLimit());
}

TEST(DiagnosticsTest, CapClampsToAtLeastOne) {
  DiagnosticEngine DE(/*MaxErrors=*/-5);
  DE.error(DiagCode::BadOption, "--jobs", "bad");
  DE.error(DiagCode::BadOption, "--stages", "bad");
  EXPECT_EQ(DE.diagnostics().size(), 1u);
  EXPECT_EQ(DE.errorCount(), 2u);
}

TEST(DiagnosticsTest, RenderOnePerLine) {
  DiagnosticEngine DE;
  DE.error(DiagCode::BadOption, "--a", "x");
  DE.error(DiagCode::BadOption, "--b", "y");
  const std::string Out = DE.render();
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 2);
}
