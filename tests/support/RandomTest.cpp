//===- tests/support/RandomTest.cpp - PRNG tests ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(RandomTest, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(RandomTest, DoubleRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, FloatRange) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    float F = R.nextFloat(-2.0f, 3.0f);
    EXPECT_GE(F, -2.0f);
    EXPECT_LT(F, 3.0f);
  }
}

TEST(RandomTest, BelowBound) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RandomTest, RoughUniformity) {
  Rng R(13);
  int Buckets[10] = {};
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    ++Buckets[static_cast<int>(R.nextDouble() * 10.0)];
  for (int B : Buckets) {
    EXPECT_GT(B, N / 10 - N / 50);
    EXPECT_LT(B, N / 10 + N / 50);
  }
}
