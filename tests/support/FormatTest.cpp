//===- tests/support/FormatTest.cpp - formatStr tests -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace pf;

TEST(FormatTest, Basic) {
  EXPECT_EQ(formatStr("hello"), "hello");
  EXPECT_EQ(formatStr("%d", 42), "42");
  EXPECT_EQ(formatStr("%s=%d", "x", -7), "x=-7");
}

TEST(FormatTest, Floats) {
  EXPECT_EQ(formatStr("%.2f", 3.14159), "3.14");
  EXPECT_EQ(formatStr("%.0f%%", 99.6), "100%");
}

TEST(FormatTest, Empty) { EXPECT_EQ(formatStr("%s", ""), ""); }

TEST(FormatTest, LongOutput) {
  std::string Long(1000, 'x');
  EXPECT_EQ(formatStr("%s", Long.c_str()).size(), 1000u);
}

TEST(FormatTest, MixedArguments) {
  EXPECT_EQ(formatStr("%s/%d/%.1f", "a", 1, 2.5), "a/1/2.5");
}
