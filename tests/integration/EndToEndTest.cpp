//===- tests/integration/EndToEndTest.cpp - evaluation shapes ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests pinning the qualitative shapes of the paper's
/// evaluation: who wins, by roughly what factor, and where the crossovers
/// fall. These guard the calibration that the bench binaries report.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "codegen/CommandGenerator.h"
#include "ir/Builder.h"
#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "search/Profiler.h"

using namespace pf;

namespace {

CompileResult run(const std::string &Model, OffloadPolicy Policy,
                  PimFlowOptions Options = {}) {
  Graph G = buildModel(Model);
  return PimFlow(Policy, Options).compileAndRun(G);
}

} // namespace

TEST(EndToEndShapes, PimFlowBeatsBaselineOnEveryModel) {
  // Fig. 9: PIMFlow end-to-end < GPU baseline for all five CNNs.
  for (const std::string &Model : modelNames()) {
    const double Base = run(Model, OffloadPolicy::GpuOnly).endToEndNs();
    const double Flow = run(Model, OffloadPolicy::PimFlow).endToEndNs();
    EXPECT_LT(Flow, Base) << Model;
    // The paper's end-to-end speedups are below ~2.2x.
    EXPECT_GT(Flow, Base / 2.5) << Model;
  }
}

TEST(EndToEndShapes, MobileNetsGainMostOnConvLayers) {
  // "The performance gain is more significant with ENetB0, MBNetV2 and
  // MnasNet than ResNet50 and VGG16."
  auto ConvRatio = [](const std::string &Model) {
    const double Base = run(Model, OffloadPolicy::GpuOnly).ConvLayerNs;
    const double Flow = run(Model, OffloadPolicy::PimFlowMd).ConvLayerNs;
    return Flow / Base;
  };
  const double Mobile = ConvRatio("mobilenet-v2");
  const double Vgg = ConvRatio("vgg-16");
  EXPECT_LT(Mobile, Vgg);
  EXPECT_LT(Mobile, 0.8);  // Large CONV-layer gains on mobile nets.
  EXPECT_GT(Vgg, 0.6);     // Compute-heavy convs gain less.
}

TEST(EndToEndShapes, NewtonPlusPlusBeatsNewtonPlus) {
  // The PIM-command optimizations alone boost CONV layers (Fig. 9/14).
  for (const std::string Model : {"mobilenet-v2", "efficientnet-v1-b0"}) {
    const double NPlus = run(Model, OffloadPolicy::NewtonPlus).ConvLayerNs;
    const double NPlusPlus =
        run(Model, OffloadPolicy::NewtonPlusPlus).ConvLayerNs;
    EXPECT_LT(NPlusPlus, NPlus) << Model;
    EXPECT_GT(NPlusPlus, 0.6 * NPlus) << Model;
  }
}

TEST(EndToEndShapes, PipeliningHelpsMobileNetsOnly) {
  // Fig. 9/11: PIMFlow-pl gains on mobile nets; ResNet50/VGG16 have no
  // pipeline patterns, so PIMFlow-pl == Newton++ there.
  const double MobilePl =
      run("mobilenet-v2", OffloadPolicy::PimFlowPl).endToEndNs();
  const double MobileNpp =
      run("mobilenet-v2", OffloadPolicy::NewtonPlusPlus).endToEndNs();
  EXPECT_LT(MobilePl, MobileNpp);

  const double ResPl =
      run("resnet-50", OffloadPolicy::PimFlowPl).endToEndNs();
  const double ResNpp =
      run("resnet-50", OffloadPolicy::NewtonPlusPlus).endToEndNs();
  EXPECT_NEAR(ResPl, ResNpp, 1e-3 * ResNpp);
}

TEST(EndToEndShapes, CombinedPimFlowAtLeastMatchesVariants) {
  for (const std::string Model : {"mobilenet-v2", "mnasnet-1.0"}) {
    const double Md = run(Model, OffloadPolicy::PimFlowMd).endToEndNs();
    const double Pl = run(Model, OffloadPolicy::PimFlowPl).endToEndNs();
    const double Full = run(Model, OffloadPolicy::PimFlow).endToEndNs();
    // Within the DP's isolated-profiling approximation (see
    // PimFlowTest.MechanismOrderingOnMobileNet).
    EXPECT_LE(Full, Md * 1.02) << Model;
    EXPECT_LE(Full, Pl * 1.02) << Model;
  }
}

TEST(EndToEndShapes, EnergyDropsWithPimFlow) {
  // Fig. 12: PIM mechanisms consume less energy than the GPU baseline on
  // the compute-heavy models; the paper reports 26% on average for
  // PIMFlow.
  double RatioSum = 0.0;
  int Count = 0;
  for (const std::string &Model : modelNames()) {
    const double Base = run(Model, OffloadPolicy::GpuOnly).energyJ();
    const double Flow = run(Model, OffloadPolicy::PimFlow).energyJ();
    RatioSum += Flow / Base;
    ++Count;
  }
  EXPECT_LT(RatioSum / Count, 0.95); // Average energy reduction.
}

TEST(EndToEndShapes, GemvValidationAnchor) {
  // Fig. 8: at batch 1 a large GEMV is an order of magnitude faster on PIM
  // than on the GPU, and the gap narrows as the batch grows.
  SystemConfig C;
  C.Gpu = GpuConfig::titanVLike();
  C.Pim = PimConfig::newtonPlusPlus();
  Profiler P(C);

  auto Speedup = [&P](int64_t Batch) {
    GraphBuilder B("gemv");
    ValueId X = B.input("x", TensorShape{Batch, 4096});
    B.output(B.gemm(X, 4096));
    Graph G = B.take();
    NodeId N = G.topoOrder().front();
    return P.gpuNodeNs(G, N) / P.pimNodeNs(G, N);
  };

  const double S1 = Speedup(1);
  EXPECT_GT(S1, 8.0);
  EXPECT_LT(S1, 40.0);
  const double S16 = Speedup(16);
  EXPECT_LT(S16, S1);
}

TEST(EndToEndShapes, BertSequenceLengthSensitivity) {
  // Fig. 16: for short sequences PIMFlow matches Newton++ (nothing to
  // split); for longer sequences MD-DP over FC rows adds a speedup.
  Graph Short = buildBertEncoder(3, 4);
  Graph Long = buildBertEncoder(64, 4);
  const double ShortNpp =
      PimFlow(OffloadPolicy::NewtonPlusPlus).compileAndRun(Short)
          .endToEndNs();
  const double ShortFlow =
      PimFlow(OffloadPolicy::PimFlow).compileAndRun(Short).endToEndNs();
  EXPECT_NEAR(ShortFlow, ShortNpp, 0.05 * ShortNpp);

  const double LongNpp =
      PimFlow(OffloadPolicy::NewtonPlusPlus).compileAndRun(Long)
          .endToEndNs();
  const double LongFlow =
      PimFlow(OffloadPolicy::PimFlow).compileAndRun(Long).endToEndNs();
  EXPECT_LT(LongFlow, LongNpp);
}

TEST(EndToEndShapes, CommandOptimizationAblation) {
  // Fig. 14: GWRITE latency hiding and multiple global buffers each help
  // on their own and compose.
  const Graph Model = buildMobileNetV2();
  auto ConvNs = [&Model](std::optional<int> Buffers,
                         std::optional<bool> Hiding) {
    PimFlowOptions O;
    O.NumGlobalBuffers = Buffers.value_or(1);
    O.GwriteLatencyHiding = Hiding.value_or(false);
    return PimFlow(OffloadPolicy::NewtonPlus, O).compileAndRun(Model)
        .ConvLayerNs;
  };
  const double Neither = ConvNs(1, false);
  const double HidingOnly = ConvNs(1, true);
  const double BuffersOnly = ConvNs(4, false);
  const double Both = ConvNs(4, true);
  EXPECT_LT(HidingOnly, Neither);
  EXPECT_LT(BuffersOnly, Neither);
  EXPECT_LE(Both, HidingOnly);
  EXPECT_LE(Both, BuffersOnly);
}
