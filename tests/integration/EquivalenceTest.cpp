//===- tests/integration/EquivalenceTest.cpp - whole-flow checks -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-correctness contract: for any model and any offloading
/// mechanism, the graph PIMFlow produces must compute exactly what the
/// original model computes. These tests run the full search + transform
/// pipeline and compare reference-interpreter outputs element by element.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "models/Zoo.h"
#include "runtime/Equivalence.h"

using namespace pf;

namespace {

/// The same bit-exact comparison the --differential pipeline check uses
/// (runtime/Equivalence.h): one shared oracle for tests and production.
void expectEquivalent(const Graph &Original, const Graph &Transformed,
                      uint64_t Seed) {
  const std::optional<std::string> Diff =
      compareGraphOutputs(Original, Transformed, Seed);
  EXPECT_FALSE(Diff.has_value()) << *Diff;
}

/// A small but structurally rich CNN: stem conv, two inverted-residual
/// blocks (pipeline patterns), residual add, classifier.
Graph miniMobileNet() {
  GraphBuilder B("mini-mobile");
  ValueId X = B.input("x", TensorShape{1, 24, 24, 3});
  X = B.relu6(B.conv2d(X, 8, 3, 2, 1));
  // Block 1 (stride 1, residual).
  {
    ValueId In = X;
    ValueId V = B.relu6(B.conv2d(In, 24, 1, 1, 0));
    V = B.relu6(B.dwConv(V, 3, 1, 1));
    V = B.conv2d(V, 8, 1, 1, 0);
    X = B.add(V, In);
  }
  // Block 2 (stride 2).
  {
    ValueId V = B.relu6(B.conv2d(X, 24, 1, 1, 0));
    V = B.relu6(B.dwConv(V, 3, 2, 1));
    X = B.conv2d(V, 12, 1, 1, 0);
  }
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 10);
  B.output(X);
  return B.take();
}

} // namespace

class PolicyEquivalence : public ::testing::TestWithParam<OffloadPolicy> {};

TEST_P(PolicyEquivalence, MiniMobileNet) {
  const Graph Model = miniMobileNet();
  PimFlow Flow(GetParam());
  CompileResult R = Flow.compileAndRun(Model);
  expectEquivalent(Model, R.Transformed, 1234);
}

TEST_P(PolicyEquivalence, ToyNetwork) {
  const Graph Model = buildToy();
  PimFlow Flow(GetParam());
  CompileResult R = Flow.compileAndRun(Model);
  expectEquivalent(Model, R.Transformed, 77);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyEquivalence,
    ::testing::Values(OffloadPolicy::GpuOnly, OffloadPolicy::NewtonPlus,
                      OffloadPolicy::NewtonPlusPlus,
                      OffloadPolicy::PimFlowMd, OffloadPolicy::PimFlowPl,
                      OffloadPolicy::PimFlow),
    [](const auto &Info) {
      std::string Out;
      for (char C : std::string(policyName(Info.param))) {
        if (isalnum(static_cast<unsigned char>(C)))
          Out += C;
        else if (C == '+')
          Out += 'P'; // Keep Newton+ / Newton++ distinct.
      }
      return Out;
    });

TEST(EquivalenceTest, PipelineStagesSweep) {
  // The stage-count sensitivity study must not change results either.
  const Graph Model = miniMobileNet();
  for (int Stages : {2, 3, 4}) {
    PimFlowOptions O;
    O.PipelineStages = Stages;
    PimFlow Flow(OffloadPolicy::PimFlowPl, O);
    CompileResult R = Flow.compileAndRun(Model);
    expectEquivalent(Model, R.Transformed, 55 + Stages);
  }
}

TEST(EquivalenceTest, ChannelRatioSweep) {
  const Graph Model = miniMobileNet();
  for (int PimChannels : {4, 8, 24}) {
    PimFlowOptions O;
    O.PimChannels = PimChannels;
    PimFlow Flow(OffloadPolicy::PimFlow, O);
    CompileResult R = Flow.compileAndRun(Model);
    expectEquivalent(Model, R.Transformed, 900 + PimChannels);
  }
}

TEST(EquivalenceTest, BertEncoderUnderPimFlow) {
  const Graph Model = buildBertEncoder(8, /*NumLayers=*/2);
  PimFlow Flow(OffloadPolicy::PimFlow);
  CompileResult R = Flow.compileAndRun(Model);
  expectEquivalent(Model, R.Transformed, 4242);
}
