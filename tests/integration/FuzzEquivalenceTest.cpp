//===- tests/integration/FuzzEquivalenceTest.cpp - random graphs -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based testing of the compiler's correctness contract on
/// randomly generated CNN-like graphs: for any generated model, any random
/// sequence of MD-DP splits and pipelining applications, and the full
/// PIMFlow search itself, the transformed graph must validate and compute
/// exactly the original outputs.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "runtime/Interpreter.h"
#include "support/Format.h"
#include "support/Random.h"
#include "transform/Canonicalize.h"
#include "transform/MdDpSplitPass.h"
#include "transform/PatternMatch.h"
#include "transform/PipelinePass.h"

using namespace pf;

namespace {

/// Generates a random CNN-like graph: a chain of conv / depthwise /
/// pointwise / pool / activation layers with occasional residual adds,
/// ending in a classifier. Shapes stay small so the reference interpreter
/// is fast.
Graph randomCnn(uint64_t Seed) {
  Rng R(Seed);
  GraphBuilder B(formatStr("fuzz-%llu", (unsigned long long)Seed));
  int64_t H = 16 + static_cast<int64_t>(R.nextBelow(3)) * 8; // 16/24/32
  ValueId X = B.input("x", TensorShape{1, H, H, 3});
  X = B.relu(B.conv2d(X, 8, 3, 1, 1));

  const int Layers = 3 + static_cast<int>(R.nextBelow(5));
  ValueId Residual = InvalidValue;
  for (int L = 0; L < Layers; ++L) {
    const int64_t C = B.graph().value(X).Shape.dim(3);
    const int64_t CurH = B.graph().value(X).Shape.dim(1);
    switch (R.nextBelow(6)) {
    case 0: { // pointwise expand/project
      const int64_t Cout = 4 + static_cast<int64_t>(R.nextBelow(4)) * 4;
      X = B.conv2d(X, Cout, 1, 1, 0);
      break;
    }
    case 1: // depthwise
      X = B.dwConv(X, 3, 1, 1);
      break;
    case 2: { // dense conv, sometimes strided
      const int64_t Stride = CurH >= 8 && R.nextBelow(2) ? 2 : 1;
      X = B.conv2d(X, C, 3, Stride, 1, 1, R.nextBelow(2) == 0);
      break;
    }
    case 3: // activation
      X = R.nextBelow(2) ? B.relu6(X) : B.silu(X);
      break;
    case 4: // residual bracket
      if (Residual != InvalidValue &&
          B.graph().value(Residual).Shape == B.graph().value(X).Shape) {
        X = B.add(X, Residual);
        Residual = InvalidValue;
      } else {
        Residual = X;
      }
      break;
    case 5: // pool (keep spatial extent workable)
      if (CurH >= 8)
        X = B.maxPool(X, 2, 2);
      break;
    }
  }
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 10);
  B.output(X);
  return B.take();
}

/// Full-precision serialization of a search result, for byte-wise
/// parallel-vs-serial comparison (mirrors SearchDeterminismTest).
std::string planFingerprint(const ExecutionPlan &Plan) {
  std::string S;
  for (const SegmentPlan &Seg : Plan.Segments) {
    S += segmentModeName(Seg.Mode);
    for (NodeId Id : Seg.Nodes)
      S += formatStr(" n%lld", static_cast<long long>(Id));
    S += formatStr(" r%.17g st%d ns%.17g;", Seg.RatioGpu, Seg.Stages,
                   Seg.PredictedNs);
  }
  return S + formatStr("|total:%.17g", Plan.PredictedNs);
}

std::vector<Tensor> runGraph(const Graph &G, uint64_t Seed) {
  std::vector<Tensor> Inputs;
  for (ValueId In : G.graphInputs())
    Inputs.push_back(Interpreter::randomInput(G.value(In).Shape, Seed));
  return Interpreter(G).run(Inputs);
}

void expectEquivalent(const Graph &A, const Graph &B, uint64_t Seed) {
  auto OA = runGraph(A, Seed);
  auto OB = runGraph(B, Seed);
  ASSERT_EQ(OA.size(), OB.size());
  for (size_t I = 0; I < OA.size(); ++I) {
    ASSERT_EQ(OA[I].shape(), OB[I].shape());
    for (int64_t E = 0; E < OA[I].numElements(); ++E)
      ASSERT_EQ(OA[I].at(E), OB[I].at(E)) << "element " << E;
  }
}

} // namespace

class FuzzEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalence, RandomSplitsPreserveSemantics) {
  const uint64_t Seed = GetParam();
  const Graph Original = randomCnn(Seed);
  Graph G = Original;
  Rng R(Seed * 31 + 7);
  for (NodeId Id : Original.topoOrder()) {
    if (G.node(Id).Dead || !isPimCandidate(G.node(Id)))
      continue;
    if (R.nextBelow(3) == 0)
      continue; // Leave some layers untouched.
    const double Ratio = 0.1 * static_cast<double>(1 + R.nextBelow(9));
    applyMdDpSplit(G, Id, Ratio);
  }
  canonicalize(G);
  ASSERT_FALSE(G.validate().has_value());
  expectEquivalent(Original, G, Seed + 1);
}

TEST_P(FuzzEquivalence, RandomPipelinesPreserveSemantics) {
  const uint64_t Seed = GetParam();
  const Graph Original = randomCnn(Seed);
  Graph G = Original;
  Rng R(Seed * 77 + 3);
  // Apply every other matched candidate whose nodes are still live.
  for (const PipelineCandidate &Cand : findPipelineCandidates(Original)) {
    bool Live = true;
    for (NodeId Id : Cand.Chain)
      Live &= !G.node(Id).Dead;
    if (!Live || R.nextBelow(2) == 0)
      continue;
    PipelineSpec Spec;
    Spec.Chain = Cand.Chain;
    Spec.NumStages = 2 + static_cast<int>(R.nextBelow(2));
    if (!isPipelineableChain(G, Spec.Chain))
      continue;
    applyPipeline(G, Spec);
  }
  canonicalize(G);
  ASSERT_FALSE(G.validate().has_value());
  expectEquivalent(Original, G, Seed + 2);
}

TEST_P(FuzzEquivalence, FullPimFlowPreservesSemantics) {
  const uint64_t Seed = GetParam();
  const Graph Original = randomCnn(Seed);
  PimFlow Flow(OffloadPolicy::PimFlow);
  CompileResult R = Flow.compileAndRun(Original);
  ASSERT_FALSE(R.Transformed.validate().has_value());
  expectEquivalent(Original, R.Transformed, Seed + 3);
}

TEST_P(FuzzEquivalence, ConcurrentProfilingMatchesSerialSearch) {
  // Randomized cross-check of the search's jobs invariance: on any
  // generated graph, profiling from a seeded number of workers chooses the
  // same plan, at the same costs, with the same cache statistics, as the
  // serial search.
  const uint64_t Seed = GetParam();
  const Graph G = randomCnn(Seed);
  struct Run {
    std::string Fingerprint;
    size_t Hits = 0;
    size_t Misses = 0;
  };
  auto Search = [&](int Jobs) {
    Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
    SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlow, {});
    S.Jobs = Jobs;
    const ExecutionPlan Plan = SearchEngine(P, S).search(G);
    return Run{planFingerprint(Plan), P.cacheHits(), P.cacheMisses()};
  };
  const Run Serial = Search(1);
  const int Workers = 2 + static_cast<int>(Seed % 7); // Seeded 2..8.
  const Run Parallel = Search(Workers);
  EXPECT_EQ(Parallel.Fingerprint, Serial.Fingerprint)
      << "workers=" << Workers;
  EXPECT_EQ(Parallel.Misses, Serial.Misses);
  EXPECT_EQ(Parallel.Hits + Parallel.Misses, Serial.Hits + Serial.Misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<uint64_t>(1, 13));
