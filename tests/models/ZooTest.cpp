//===- tests/models/ZooTest.cpp - model zoo tests ---------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "models/Zoo.h"

#include <gtest/gtest.h>

#include "ir/Metrics.h"
#include "ir/ShapeInference.h"

using namespace pf;

namespace {

int64_t paramCount(const Graph &G) {
  int64_t N = 0;
  for (const Value &V : G.values())
    if (V.IsParam)
      N += V.Shape.numElements();
  return N;
}

int convCount(const Graph &G, bool Depthwise) {
  int N = 0;
  for (const Node &Nd : G.nodes())
    if (!Nd.Dead && Nd.Kind == OpKind::Conv2d &&
        isDepthwiseConv(Nd) == Depthwise)
      ++N;
  return N;
}

} // namespace

class ZooModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelTest, ValidatesAndInfers) {
  Graph G = buildModel(GetParam());
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_FALSE(inferShapes(G).has_value());
  EXPECT_EQ(G.graphInputs().size(), 1u);
  EXPECT_EQ(G.graphOutputs().size(), 1u);
}

TEST_P(ZooModelTest, ClassifierOutputIs1000Way) {
  Graph G = buildModel(GetParam());
  EXPECT_EQ(G.value(G.graphOutputs()[0]).Shape, (TensorShape{1, 1000}));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::ValuesIn(modelNames()),
                         [](const auto &Info) {
                           std::string N = Info.param;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(ZooTest, Vgg16ParameterCount) {
  // ~138M parameters.
  const int64_t P = paramCount(buildVgg16());
  EXPECT_GT(P, 130'000'000);
  EXPECT_LT(P, 145'000'000);
}

TEST(ZooTest, ResNet50ParameterCount) {
  // ~25.5M parameters (ours folds batch norm: slightly fewer).
  const int64_t P = paramCount(buildResNet50());
  EXPECT_GT(P, 23'000'000);
  EXPECT_LT(P, 27'000'000);
}

TEST(ZooTest, MobileNetV2ParameterCount) {
  // ~3.5M parameters.
  const int64_t P = paramCount(buildMobileNetV2());
  EXPECT_GT(P, 3'000'000);
  EXPECT_LT(P, 4'000'000);
}

TEST(ZooTest, MnasNetParameterCount) {
  // ~4.4M parameters (torchvision mnasnet1_0 w/o BN).
  const int64_t P = paramCount(buildMnasNet());
  EXPECT_GT(P, 3'500'000);
  EXPECT_LT(P, 5'500'000);
}

TEST(ZooTest, EfficientNetB0ParameterCount) {
  // ~5.3M parameters.
  const int64_t P = paramCount(buildEfficientNet(0));
  EXPECT_GT(P, 4'000'000);
  EXPECT_LT(P, 6'500'000);
}

TEST(ZooTest, ResNet50MacCount) {
  // ~4.1 GMACs at 224x224.
  const int64_t Macs = computeGraphMetrics(buildResNet50()).Macs;
  EXPECT_GT(Macs, 3'500'000'000);
  EXPECT_LT(Macs, 4'500'000'000);
}

TEST(ZooTest, MobileNetV2MacCount) {
  // ~0.3 GMACs.
  const int64_t Macs = computeGraphMetrics(buildMobileNetV2()).Macs;
  EXPECT_GT(Macs, 250'000'000);
  EXPECT_LT(Macs, 400'000'000);
}

TEST(ZooTest, Vgg16MacCount) {
  // ~15.5 GMACs.
  const int64_t Macs = computeGraphMetrics(buildVgg16()).Macs;
  EXPECT_GT(Macs, 14'000'000'000);
  EXPECT_LT(Macs, 17'000'000'000);
}

TEST(ZooTest, MobileNetV2HasDepthwiseLayers) {
  Graph G = buildMobileNetV2();
  EXPECT_EQ(convCount(G, /*Depthwise=*/true), 17);
  EXPECT_GT(convCount(G, /*Depthwise=*/false), 30);
}

TEST(ZooTest, Vgg16HasNoDepthwiseLayers) {
  EXPECT_EQ(convCount(buildVgg16(), /*Depthwise=*/true), 0);
}

TEST(ZooTest, ResNet50HasNoDepthwiseLayers) {
  EXPECT_EQ(convCount(buildResNet50(), /*Depthwise=*/true), 0);
}

TEST(ZooTest, EfficientNetScalingGrowsModel) {
  const int64_t P0 = paramCount(buildEfficientNet(0));
  const int64_t P3 = paramCount(buildEfficientNet(3));
  const int64_t P6 = paramCount(buildEfficientNet(6));
  EXPECT_GT(P3, P0);
  EXPECT_GT(P6, P3);
  const int64_t M0 = computeGraphMetrics(buildEfficientNet(0)).Macs;
  const int64_t M6 = computeGraphMetrics(buildEfficientNet(6)).Macs;
  EXPECT_GT(M6, 8 * M0); // Compound scaling explodes compute.
}

TEST(ZooTest, EfficientNetResolution) {
  Graph B0 = buildEfficientNet(0);
  Graph B6 = buildEfficientNet(6);
  EXPECT_EQ(B0.value(B0.graphInputs()[0]).Shape.dim(1), 224);
  EXPECT_EQ(B6.value(B6.graphInputs()[0]).Shape.dim(1), 528);
}

TEST(ZooTest, BertIsFcDominated) {
  Graph G = buildBertEncoder(64);
  EXPECT_FALSE(G.validate().has_value());
  int Gemms = 0;
  for (const Node &N : G.nodes())
    Gemms += !N.Dead && N.Kind == OpKind::Gemm;
  EXPECT_EQ(Gemms, 12 * 6); // 6 projections per layer.
  // ~85M encoder parameters.
  const int64_t P = paramCount(G);
  EXPECT_GT(P, 80'000'000);
  EXPECT_LT(P, 95'000'000);
}

TEST(ZooTest, BertSequenceLengthPropagates) {
  Graph G = buildBertEncoder(3);
  EXPECT_EQ(G.value(G.graphOutputs()[0]).Shape, (TensorShape{3, 768}));
}

TEST(ZooTest, ToyIsSmall) {
  Graph G = buildToy();
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_LT(G.numNodes(), 15u);
  EXPECT_EQ(convCount(G, /*Depthwise=*/true), 1);
}

TEST(ZooTest, MobileNetWidthScaling) {
  const int64_t P10 = paramCount(buildMobileNetV2(1.0));
  const int64_t P14 = paramCount(buildMobileNetV2(1.4));
  const int64_t P20 = paramCount(buildMobileNetV2(2.0));
  EXPECT_GT(P14, 1.5 * P10); // Params grow ~quadratically in width.
  EXPECT_GT(P20, 3.0 * P10);
  Graph G = buildMobileNetV2(1.4);
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_EQ(G.name(), "mobilenet-v2-w1.40");
}

TEST(ZooTest, MnasNetWidthScaling) {
  const int64_t P10 = paramCount(buildMnasNet(1.0));
  const int64_t P20 = paramCount(buildMnasNet(2.0));
  EXPECT_GT(P20, 3.0 * P10);
  EXPECT_FALSE(buildMnasNet(0.5).validate().has_value());
}

TEST(ZooTest, ModelNamesRoundTrip) {
  for (const std::string &Name : modelNames()) {
    Graph G = buildModel(Name);
    EXPECT_EQ(G.name(), Name);
  }
}
