//===- tests/models/ZooExtraTest.cpp - additional model tests ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "ir/Metrics.h"
#include "ir/Parallelism.h"
#include "ir/ShapeInference.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

int64_t paramCount(const Graph &G) {
  int64_t N = 0;
  for (const Value &V : G.values())
    if (V.IsParam)
      N += V.Shape.numElements();
  return N;
}

} // namespace

class ZooExtraModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooExtraModelTest, ValidatesAndClassifies) {
  Graph G = buildModel(GetParam());
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_FALSE(inferShapes(G).has_value());
  EXPECT_EQ(G.value(G.graphOutputs()[0]).Shape, (TensorShape{1, 1000}));
}

INSTANTIATE_TEST_SUITE_P(Extras, ZooExtraModelTest,
                         ::testing::ValuesIn(extraModelNames()),
                         [](const auto &Info) {
                           std::string N = Info.param;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(ZooExtraTest, AlexNetParamCount) {
  // ~61M parameters, dominated by the FC layers.
  const int64_t P = paramCount(buildAlexNet());
  EXPECT_GT(P, 55'000'000);
  EXPECT_LT(P, 65'000'000);
}

TEST(ZooExtraTest, SqueezeNetIsTiny) {
  // ~1.2M parameters: the 1x1-heavy design.
  const int64_t P = paramCount(buildSqueezeNet());
  EXPECT_GT(P, 900'000);
  EXPECT_LT(P, 1'600'000);
}

TEST(ZooExtraTest, SqueezeNetHasInherentParallelism) {
  // Fire modules' parallel 1x1/3x3 expands: one of the few CNNs with
  // real inter-node parallelism (Section 3, observation 1's exception).
  ParallelismStats S = analyzeParallelism(buildSqueezeNet());
  EXPECT_GT(S.independentFraction(), 0.3);
}

TEST(ZooExtraTest, ResNetFamilyOrdering) {
  const int64_t P18 = paramCount(buildResNet18());
  const int64_t P34 = paramCount(buildResNet34());
  const int64_t P50 = paramCount(buildResNet50());
  EXPECT_GT(P18, 10'000'000);
  EXPECT_LT(P18, 13'000'000); // ~11.7M
  EXPECT_GT(P34, P18);
  EXPECT_GT(P50, P34);
  const int64_t M18 = computeGraphMetrics(buildResNet18()).Macs;
  const int64_t M34 = computeGraphMetrics(buildResNet34()).Macs;
  EXPECT_GT(M34, M18);
}

TEST(ZooExtraTest, DenseNetChannelGrowth) {
  Graph G = buildDenseNet121();
  // ~8M parameters (BN folded).
  const int64_t P = paramCount(G);
  EXPECT_GT(P, 6'000'000);
  EXPECT_LT(P, 9'000'000);
  // The final dense block ends at 64 + sum(growth) channels per the
  // published architecture: 1024 before the classifier.
  int64_t MaxChannels = 0;
  for (const Value &V : G.values())
    if (!V.IsParam && V.Shape.rank() == 4)
      MaxChannels = std::max(MaxChannels, V.Shape.dim(3));
  EXPECT_EQ(MaxChannels, 1024);
}
