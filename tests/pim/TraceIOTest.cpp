//===- tests/pim/TraceIOTest.cpp - trace IO & cross-validation --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/TraceIO.h"

#include <gtest/gtest.h>

#include "codegen/CommandGenerator.h"
#include "pim/PimSimulator.h"
#include "pim/ReferenceSimulator.h"
#include "support/Random.h"

using namespace pf;

namespace {

DeviceTrace sampleTrace() {
  DeviceTrace T(4);
  CommandBlock B;
  B.Pattern = {PimCommand::gwrite(9, 4), PimCommand::gact(2),
               PimCommand::comp(72), PimCommand::readRes(4)};
  B.Repeats = 49;
  T.Channels[0].Blocks.push_back(B);
  T.Channels[2].Blocks.push_back(CommandBlock{{PimCommand::comp(5)}, 1});
  return T;
}

/// Generates a random but well-formed channel trace.
ChannelTrace randomTrace(uint64_t Seed) {
  Rng R(Seed);
  ChannelTrace T;
  const int Blocks = 1 + static_cast<int>(R.nextBelow(3));
  for (int B = 0; B < Blocks; ++B) {
    CommandBlock Block;
    Block.Repeats = 1 + static_cast<int64_t>(R.nextBelow(20));
    const int Cmds = 1 + static_cast<int>(R.nextBelow(8));
    for (int I = 0; I < Cmds; ++I) {
      switch (R.nextBelow(4)) {
      case 0:
        Block.Pattern.push_back(PimCommand::gwrite(
            1 + static_cast<int64_t>(R.nextBelow(16)),
            R.nextBelow(2) ? 4 : 1));
        break;
      case 1:
        Block.Pattern.push_back(
            PimCommand::gact(1 + static_cast<int64_t>(R.nextBelow(4))));
        break;
      case 2:
        Block.Pattern.push_back(
            PimCommand::comp(1 + static_cast<int64_t>(R.nextBelow(100))));
        break;
      case 3:
        Block.Pattern.push_back(PimCommand::readRes(
            1 + static_cast<int64_t>(R.nextBelow(8))));
        break;
      }
    }
    T.Blocks.push_back(std::move(Block));
  }
  return T;
}

} // namespace

TEST(TraceIOTest, ExpandCounts) {
  ChannelTrace T;
  T.Blocks.push_back(CommandBlock{{PimCommand::comp(3)}, 5});
  T.Blocks.push_back(
      CommandBlock{{PimCommand::gact(), PimCommand::readRes()}, 2});
  const auto Flat = expandTrace(T);
  EXPECT_EQ(Flat.size(), 5u + 4u);
  EXPECT_EQ(Flat[0].Kind, PimCmdKind::Comp);
  EXPECT_EQ(Flat.back().Kind, PimCmdKind::ReadRes);
}

TEST(TraceIOTest, DumpParseRoundTrip) {
  const DeviceTrace T = sampleTrace();
  auto Parsed = parseTrace(dumpTrace(T));
  ASSERT_TRUE(std::holds_alternative<DeviceTrace>(Parsed))
      << std::get<std::string>(Parsed);
  const DeviceTrace &P = std::get<DeviceTrace>(Parsed);
  ASSERT_EQ(P.Channels.size(), T.Channels.size());
  EXPECT_EQ(P.numActiveChannels(), T.numActiveChannels());
  // Identical timing under the simulator is the semantic equality check.
  PimSimulator Sim(PimConfig::newtonPlusPlus());
  EXPECT_EQ(Sim.run(P).Cycles, Sim.run(T).Cycles);
  EXPECT_EQ(Sim.run(P).CompColumns, Sim.run(T).CompColumns);
  // And the dump itself is stable.
  EXPECT_EQ(dumpTrace(P), dumpTrace(T));
}

TEST(TraceIOTest, GeneratedKernelTraceRoundTrips) {
  PimCommandGenerator Gen(PimConfig::newtonPlusPlus(), CodegenOptions{});
  PimKernelSpec Spec;
  Spec.M = 144;
  Spec.K = 24;
  Spec.NumVectors = 3136;
  const PimKernelPlan Plan = Gen.plan(Spec);
  auto Parsed = parseTrace(dumpTrace(Plan.Trace));
  ASSERT_TRUE(std::holds_alternative<DeviceTrace>(Parsed));
  PimSimulator Sim(PimConfig::newtonPlusPlus());
  EXPECT_EQ(Sim.run(std::get<DeviceTrace>(Parsed)).Cycles,
            Plan.Stats.Cycles);
}

TEST(TraceIOTest, ParseRejections) {
  EXPECT_TRUE(std::holds_alternative<std::string>(parseTrace("garbage")));
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseTrace("pimflow-trace v1 channels=2\nblock repeat=1\n"
                 "  COMP cols=1\nend\n"))); // Block before channel.
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseTrace("pimflow-trace v1 channels=2\nchannel 0\n"
                 "block repeat=1\n  FROB n=1\nend\n")));
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseTrace("pimflow-trace v1 channels=2\nchannel 5\n")));
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseTrace("pimflow-trace v1 channels=2\nchannel 0\n"
                 "block repeat=1\n  COMP cols=3\n"))); // Unterminated.
}

namespace {

/// Expects parseTrace(Text) to fail with \p Fragment in the message.
void expectTraceError(const std::string &Text,
                      const std::string &Fragment) {
  auto R = parseTrace(Text);
  ASSERT_TRUE(std::holds_alternative<std::string>(R))
      << "accepted: " << Text;
  EXPECT_NE(std::get<std::string>(R).find(Fragment), std::string::npos)
      << "got: " << std::get<std::string>(R);
}

} // namespace

TEST(TraceIOTest, RejectsJunkChannelCountWithLineNumber) {
  // Offset arithmetic used to read "channels=12x" as 12 silently.
  expectTraceError("pimflow-trace v1 channels=12x\n",
                   "line 1: channel count '12x'");
}

TEST(TraceIOTest, RejectsHeaderWithTrailingFields) {
  expectTraceError("pimflow-trace v1 channels=2 extra\n",
                   "line 1: header must be exactly");
}

TEST(TraceIOTest, RejectsImplausibleChannelCount) {
  expectTraceError("pimflow-trace v1 channels=0\n",
                   "implausible channel count 0");
  expectTraceError("pimflow-trace v1 channels=100000\n",
                   "implausible channel count");
}

TEST(TraceIOTest, RejectsJunkChannelIndexWithLineNumber) {
  expectTraceError("pimflow-trace v1 channels=2\nchannel one\n",
                   "line 2: channel index 'one'");
}

TEST(TraceIOTest, RejectsOutOfRangeChannelWithBound) {
  expectTraceError("pimflow-trace v1 channels=2\nchannel 2\n",
                   "channel index 2 out of range [0, 2)");
}

TEST(TraceIOTest, RejectsJunkRepeatWithLineNumber) {
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=9x\n",
                   "line 3: repeat count '9x'");
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=0\n",
                   "non-positive repeat count");
}

TEST(TraceIOTest, RejectsWrongCountKey) {
  // COMP carries cols=, not n=.
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=1\n  COMP n=3\nend\n",
                   "COMP expects 'cols=', got 'n='");
}

TEST(TraceIOTest, RejectsJunkCommandCountWithLineNumber) {
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=1\n  G_ACT n=2q\nend\n",
                   "line 4");
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=1\n  G_ACT n=-2\nend\n",
                   "not a positive integer");
}

TEST(TraceIOTest, RejectsCommandFieldCountMismatch) {
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=1\n  GWRITE bursts=1 extra=2\nend\n",
                   "expected 2 fields, got 3");
}

TEST(TraceIOTest, RejectsEmptyBlock) {
  expectTraceError("pimflow-trace v1 channels=2\nchannel 0\n"
                   "block repeat=1\nend\n",
                   "empty block");
}

//===----------------------------------------------------------------------===
// Cross-validation: the fast block simulator (steady-state extrapolation)
// must agree cycle-for-cycle with the unit-event reference model.
//===----------------------------------------------------------------------===

class SimulatorCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorCrossCheck, BlockAndReferenceAgree) {
  const ChannelTrace T = randomTrace(GetParam());
  for (bool Hiding : {false, true}) {
    PimConfig C =
        Hiding ? PimConfig::newtonPlusPlus() : PimConfig::newtonPlus();
    PimSimulator Fast(C);
    EXPECT_EQ(Fast.simulateChannel(T), referenceSimulateChannel(C, T))
        << "seed=" << GetParam() << " hiding=" << Hiding;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorCrossCheck,
                         ::testing::Range<uint64_t>(1, 41));

TEST(SimulatorCrossCheck, RealKernelPlansAgree) {
  PimCommandGenerator Gen(PimConfig::newtonPlusPlus(), CodegenOptions{});
  for (const auto &[M, K, V] :
       {std::tuple<int64_t, int64_t, int64_t>{144, 24, 3136},
        {4096, 25088, 1},
        {64, 576, 196},
        {1000, 1280, 1}}) {
    PimKernelSpec Spec;
    Spec.M = M;
    Spec.K = K;
    Spec.NumVectors = V;
    const PimKernelPlan Plan = Gen.plan(Spec);
    PimSimulator Fast(Gen.config());
    for (const ChannelTrace &Channel : Plan.Trace.Channels) {
      if (Channel.empty())
        continue;
      EXPECT_EQ(Fast.simulateChannel(Channel),
                referenceSimulateChannel(Gen.config(), Channel))
          << "M=" << M << " K=" << K << " V=" << V;
      break; // Channels are identical; one suffices.
    }
  }
}
