//===- tests/pim/PimSimulatorTest.cpp - PIM cycle simulator -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/PimSimulator.h"

#include <gtest/gtest.h>

using namespace pf;

namespace {

PimConfig baseConfig() {
  PimConfig C;
  C.NumGlobalBuffers = 1;
  C.GwriteLatencyHiding = false;
  return C;
}

ChannelTrace singleBlock(std::vector<PimCommand> Pattern,
                         int64_t Repeats = 1) {
  ChannelTrace T;
  T.Blocks.push_back(CommandBlock{std::move(Pattern), Repeats});
  return T;
}

} // namespace

TEST(PimConfigTest, DerivedQuantities) {
  PimConfig C;
  EXPECT_EQ(C.elementsPerComp(), 16);       // 256 bits of fp16.
  EXPECT_EQ(C.elementsPerRow(), 32 * 16);   // 32 column I/Os per row.
  EXPECT_EQ(C.macsPerComp(), 256);          // 16 banks x 16 multipliers.
  C.NumGlobalBuffers = 1;
  EXPECT_EQ(C.bufferElements(), 2048);      // 4KB of fp16.
  C.NumGlobalBuffers = 4;
  EXPECT_EQ(C.bufferElements(), 512);       // Partitioned capacity.
}

TEST(PimConfigTest, MechanismPresets) {
  EXPECT_EQ(PimConfig::newtonPlus().NumGlobalBuffers, 1);
  EXPECT_FALSE(PimConfig::newtonPlus().GwriteLatencyHiding);
  EXPECT_EQ(PimConfig::newtonPlusPlus().NumGlobalBuffers, 4);
  EXPECT_TRUE(PimConfig::newtonPlusPlus().GwriteLatencyHiding);
}

TEST(PimSimulatorTest, SingleCommandLatencies) {
  PimConfig C = baseConfig();
  PimSimulator Sim(C);
  EXPECT_EQ(Sim.simulateChannel(singleBlock({PimCommand::gact()})), C.TGact);
  EXPECT_EQ(Sim.simulateChannel(singleBlock({PimCommand::comp(1)})),
            C.TComp);
  EXPECT_EQ(Sim.simulateChannel(singleBlock({PimCommand::readRes()})),
            C.TReadRes);
  EXPECT_EQ(Sim.simulateChannel(singleBlock({PimCommand::gwrite(1, 1)})),
            C.TGwrite);
}

TEST(PimSimulatorTest, GwriteBurstsPipeline) {
  PimConfig C = baseConfig();
  PimSimulator Sim(C);
  // n bursts: first pays TGwrite, rest stream at TCcdl.
  EXPECT_EQ(Sim.simulateChannel(singleBlock({PimCommand::gwrite(5, 1)})),
            C.TGwrite + 4 * C.TCcdl);
  // GWRITE_4 carries 4x the data in one command.
  EXPECT_EQ(Sim.simulateChannel(singleBlock({PimCommand::gwrite(5, 4)})),
            C.TGwrite + 19 * C.TCcdl);
}

TEST(PimSimulatorTest, CompWaitsForGwriteAndGact) {
  PimConfig C = baseConfig();
  PimSimulator Sim(C);
  const int64_t Cycles = Sim.simulateChannel(singleBlock(
      {PimCommand::gwrite(4, 1), PimCommand::gact(),
       PimCommand::comp(10)}));
  // Serialized without hiding: gwrite + gact + comps.
  EXPECT_EQ(Cycles, (C.TGwrite + 3 * C.TCcdl) + C.TGact + 10 * C.TComp);
}

TEST(PimSimulatorTest, LatencyHidingOverlapsGwriteWithGact) {
  PimConfig NoHide = baseConfig();
  PimConfig Hide = baseConfig();
  Hide.GwriteLatencyHiding = true;
  const auto Pattern = singleBlock(
      {PimCommand::gwrite(16, 1), PimCommand::gact(), PimCommand::comp(4)});
  const int64_t Serial = PimSimulator(NoHide).simulateChannel(Pattern);
  const int64_t Overlapped = PimSimulator(Hide).simulateChannel(Pattern);
  EXPECT_LT(Overlapped, Serial);
  // With hiding, G_ACT (11 cycles) runs fully under the 41-cycle GWRITE:
  // COMP starts when the slower of the two finishes.
  EXPECT_EQ(Overlapped, (Hide.TGwrite + 15 * Hide.TCcdl) + 4 * Hide.TComp);
}

TEST(PimSimulatorTest, HidingNeverSlowsDown) {
  // Property: enabling latency hiding can only shorten any trace.
  PimConfig NoHide = baseConfig();
  PimConfig Hide = baseConfig();
  Hide.GwriteLatencyHiding = true;
  for (int Bursts = 1; Bursts <= 64; Bursts *= 2)
    for (int Comps = 1; Comps <= 256; Comps *= 4) {
      const auto T = singleBlock({PimCommand::gwrite(Bursts, 1),
                                  PimCommand::gact(),
                                  PimCommand::comp(Comps),
                                  PimCommand::readRes()},
                                 8);
      EXPECT_LE(PimSimulator(Hide).simulateChannel(T),
                PimSimulator(NoHide).simulateChannel(T))
          << "bursts=" << Bursts << " comps=" << Comps;
    }
}

TEST(PimSimulatorTest, BlockRepeatMatchesUnrolled) {
  // The steady-state extrapolation must be cycle-identical to unrolling.
  PimConfig Configs[2] = {baseConfig(), PimConfig::newtonPlusPlus()};
  for (const PimConfig &C : Configs) {
    PimSimulator Sim(C);
    const std::vector<PimCommand> Pattern = {
        PimCommand::gwrite(9, 1), PimCommand::gact(2),
        PimCommand::comp(17), PimCommand::readRes(3)};
    for (int64_t R : {1, 2, 3, 7, 50}) {
      ChannelTrace Rolled = singleBlock(Pattern, R);
      ChannelTrace Unrolled;
      for (int64_t I = 0; I < R; ++I)
        Unrolled.Blocks.push_back(CommandBlock{Pattern, 1});
      EXPECT_EQ(Sim.simulateChannel(Rolled),
                Sim.simulateChannel(Unrolled))
          << "repeats=" << R << " hiding=" << C.GwriteLatencyHiding;
    }
  }
}

TEST(PimSimulatorTest, MakespanIsMaxOverChannels) {
  PimConfig C = baseConfig();
  C.Channels = 4;
  PimSimulator Sim(C);
  DeviceTrace T(4);
  T.Channels[0] = singleBlock({PimCommand::comp(10)});
  T.Channels[2] = singleBlock({PimCommand::comp(100)});
  PimRunStats Stats = Sim.run(T);
  EXPECT_EQ(Stats.Cycles, 100 * C.TComp);
  EXPECT_EQ(Stats.ActiveChannels, 2);
  EXPECT_EQ(Stats.CompColumns, 110);
}

TEST(PimSimulatorTest, CommandCounting) {
  PimConfig C = baseConfig();
  PimSimulator Sim(C);
  DeviceTrace T(1);
  T.Channels[0] = singleBlock({PimCommand::gwrite(3, 1),
                               PimCommand::gact(2), PimCommand::comp(5),
                               PimCommand::readRes(4)},
                              10);
  PimRunStats Stats = Sim.run(T);
  EXPECT_EQ(Stats.GwriteCmds, 10);
  EXPECT_EQ(Stats.GwriteBursts, 30);
  EXPECT_EQ(Stats.GActs, 20);
  EXPECT_EQ(Stats.CompColumns, 50);
  EXPECT_EQ(Stats.ReadResCmds, 40);
}

TEST(PimSimulatorTest, FetchSupplyCapsThroughput) {
  PimConfig C = baseConfig();
  C.FetchSupplyGBs = 1.0; // Absurdly small supply.
  PimSimulator Sim(C);
  DeviceTrace T(1);
  T.Channels[0] = singleBlock({PimCommand::gwrite(1000, 1)});
  PimRunStats Stats = Sim.run(T);
  // 32000 bytes at 1 GB/s = 32 us.
  EXPECT_NEAR(Stats.Ns, 32000.0, 1.0);
}

TEST(PimSimulatorTest, EnergyScalesWithWork) {
  PimConfig C = baseConfig();
  PimSimulator Sim(C);
  DeviceTrace Small(1), Large(1);
  Small.Channels[0] = singleBlock({PimCommand::comp(10)});
  Large.Channels[0] = singleBlock({PimCommand::comp(1000)});
  const double ESmall = Sim.energyJ(Sim.run(Small), 10 * 256);
  const double ELarge = Sim.energyJ(Sim.run(Large), 1000 * 256);
  EXPECT_GT(ELarge, 50.0 * ESmall);
}

TEST(PimSimulatorTest, CyclesToNsUsesClock) {
  PimConfig C;
  C.ClockGhz = 2.0;
  EXPECT_DOUBLE_EQ(C.cyclesToNs(1000), 500.0);
}
