//===- tests/pim/FaultModelTest.cpp - fault schedule tests ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/FaultModel.h"

#include <gtest/gtest.h>

#include "codegen/CommandGenerator.h"
#include "codegen/PimKernelSpec.h"
#include "pim/PimSimulator.h"

using namespace pf;

namespace {

/// A representative offloaded kernel trace: plan a modest GEMM over the
/// configured channel group.
PimKernelPlan planGemm(const PimConfig &C) {
  PimCommandGenerator Gen(C, CodegenOptions{});
  PimKernelSpec Spec;
  Spec.M = 128;
  Spec.K = 256;
  Spec.NumVectors = 64;
  return Gen.plan(Spec);
}

PimConfig channels(int N) {
  PimConfig C = PimConfig::newtonPlusPlus();
  C.Channels = N;
  return C;
}

} // namespace

TEST(FaultModelTest, ParsesEveryEntryKind) {
  DiagnosticEngine DE;
  auto M = FaultModel::parse("dead:3,stall:1,slow:2:4.5,comp:0:8:2,"
                             "readres:5:0:1",
                             DE);
  ASSERT_TRUE(M.has_value());
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_EQ(M->faultCount(), 5);
  EXPECT_TRUE(M->channelDead(3));
  EXPECT_FALSE(M->channelDead(2));
  EXPECT_TRUE(M->channelStalled(1));
  EXPECT_DOUBLE_EQ(M->slowFactor(2), 4.5);
  EXPECT_DOUBLE_EQ(M->slowFactor(3), 1.0);
  ASSERT_EQ(M->transients().size(), 2u);
  EXPECT_EQ(M->transients()[0].Kind, PimCmdKind::Comp);
  EXPECT_EQ(M->transients()[1].Kind, PimCmdKind::ReadRes);
}

TEST(FaultModelTest, EmptySpecYieldsEmptyModel) {
  DiagnosticEngine DE;
  auto M = FaultModel::parse("", DE);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->empty());
}

TEST(FaultModelTest, MalformedSpecsProduceCodedDiagnostics) {
  for (const char *Bad :
       {"dead", "dead:x", "dead:-1", "slow:0:0.5", "slow:0:abc", "comp:0:1",
        "readres:0:1:0", "bogus:1", "slow:0:1e9"}) {
    DiagnosticEngine DE;
    EXPECT_FALSE(FaultModel::parse(Bad, DE).has_value()) << Bad;
    EXPECT_TRUE(DE.hasErrors()) << Bad;
    EXPECT_NE(DE.render().find("fault.bad-spec"), std::string::npos) << Bad;
  }
}

TEST(FaultModelTest, ChaosIsDeterministicPerSeed) {
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    const FaultModel A = FaultModel::chaos(Seed, 16);
    const FaultModel B = FaultModel::chaos(Seed, 16);
    EXPECT_EQ(A.describe(), B.describe()) << Seed;
    EXPECT_GE(A.faultCount(), 1) << Seed;
    EXPECT_LE(A.faultCount(), 3) << Seed;
  }
  // Different seeds should not all collapse onto one schedule.
  EXPECT_NE(FaultModel::chaos(1, 16).describe(),
            FaultModel::chaos(2, 16).describe());
}

TEST(FaultModelTest, SurvivorsExcludeDeadAndStalled) {
  FaultModel M;
  M.addDead(0);
  M.addStalled(2);
  M.addSlow(3, 2.0);
  const std::vector<int> S = M.survivors(5);
  EXPECT_EQ(S, (std::vector<int>{1, 3, 4}));
}

TEST(FaultModelTest, CompactedModelFollowsChannels) {
  FaultModel M;
  M.addDead(1);
  M.addSlow(2, 3.0);
  M.addTransient(TransientFault{3, PimCmdKind::Comp, 5, 2});
  const std::vector<int> S = M.survivors(4); // {0, 2, 3}
  const FaultModel C = M.compactedFor(S);
  // Channel 2 -> index 1, channel 3 -> index 2; dead entry vanished.
  EXPECT_EQ(C.faultCount(), 2);
  EXPECT_FALSE(C.channelDead(0));
  EXPECT_DOUBLE_EQ(C.slowFactor(1), 3.0);
  ASSERT_EQ(C.transients().size(), 1u);
  EXPECT_EQ(C.transients()[0].Channel, 2);
}

TEST(FaultModelTest, RetryCostGrowsExponentially) {
  RetryPolicy P;
  P.BackoffBaseCycles = 10;
  P.BackoffMultiplier = 2;
  // attempt 1: cmd + 10; attempt 2: cmd + 20; attempt 3: cmd + 40.
  EXPECT_EQ(P.retryCostCycles(1, 100), 110);
  EXPECT_EQ(P.retryCostCycles(2, 100), 230);
  EXPECT_EQ(P.retryCostCycles(3, 100), 370);
  EXPECT_EQ(P.retryCostCycles(0, 100), 0);
}

TEST(FaultRunTest, NoFaultsMatchesPlainRun) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  const PimRunStats Base = Sim.run(Plan.Trace);
  const FaultyRunStats FS =
      Sim.runWithFaults(Plan.Trace, FaultModel{}, RetryPolicy{});
  EXPECT_EQ(FS.Stats.Cycles, Base.Cycles);
  EXPECT_DOUBLE_EQ(FS.Stats.Ns, Base.Ns);
  EXPECT_FALSE(FS.anyPersistent());
  EXPECT_FALSE(FS.degraded());
  EXPECT_EQ(FS.TotalRetries, 0);
}

TEST(FaultRunTest, DeadChannelIsPersistent) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addDead(0);
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, RetryPolicy{});
  EXPECT_TRUE(FS.anyPersistent());
  ASSERT_FALSE(FS.Outcomes.empty());
  EXPECT_EQ(FS.Outcomes[0].Health, ChannelHealth::Dead);
  EXPECT_EQ(FS.Outcomes[0].Cycles, 0);
}

TEST(FaultRunTest, SlowChannelInflatesMakespan) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addSlow(0, 4.0);
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, RetryPolicy{});
  EXPECT_FALSE(FS.anyPersistent());
  EXPECT_TRUE(FS.degraded());
  EXPECT_GT(FS.Stats.Cycles, Sim.run(Plan.Trace).Cycles);
}

TEST(FaultRunTest, TransientFaultCostsBoundedRetries) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addTransient(TransientFault{0, PimCmdKind::Comp, 0, 2});
  RetryPolicy P; // MaxRetries = 3 > 2: recoverable.
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, P);
  EXPECT_FALSE(FS.anyPersistent());
  EXPECT_TRUE(FS.degraded());
  EXPECT_EQ(FS.TotalRetries, 2);
  EXPECT_GT(FS.Stats.Cycles, Sim.run(Plan.Trace).Cycles);
}

TEST(FaultRunTest, ExhaustedRetriesArePersistent) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addTransient(TransientFault{0, PimCmdKind::Comp, 0, 5});
  RetryPolicy P; // MaxRetries = 3 < 5: persistent.
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, P);
  EXPECT_TRUE(FS.anyPersistent());
  bool Found = false;
  for (const ChannelFaultOutcome &O : FS.Outcomes)
    Found |= O.Health == ChannelHealth::RetriesExhausted;
  EXPECT_TRUE(Found);
}

TEST(FaultRunTest, TransientBeyondTraceIsInert) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addTransient(TransientFault{0, PimCmdKind::Comp, int64_t(1) << 39, 5});
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, RetryPolicy{});
  EXPECT_FALSE(FS.anyPersistent());
  EXPECT_EQ(FS.TotalRetries, 0);
  EXPECT_EQ(FS.Stats.Cycles, Sim.run(Plan.Trace).Cycles);
}

TEST(FaultRunTest, StalledGwriteIsBoundedByWatchdog) {
  const PimConfig C = channels(8);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addStalled(0);
  RetryPolicy P;
  P.WatchdogCycles = 1000;
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, P);
  EXPECT_TRUE(FS.anyPersistent());
  bool Found = false;
  for (const ChannelFaultOutcome &O : FS.Outcomes)
    if (O.Health == ChannelHealth::Stalled) {
      Found = true;
      EXPECT_EQ(O.Cycles, P.WatchdogCycles);
    }
  EXPECT_TRUE(Found);
}

TEST(FaultRunTest, FaultsOutsideChannelRangeAreInert) {
  const PimConfig C = channels(4);
  const PimKernelPlan Plan = planGemm(C);
  PimSimulator Sim(C);
  FaultModel M;
  M.addDead(100);
  M.addSlow(200, 8.0);
  const FaultyRunStats FS = Sim.runWithFaults(Plan.Trace, M, RetryPolicy{});
  EXPECT_FALSE(FS.anyPersistent());
  EXPECT_EQ(FS.Stats.Cycles, Sim.run(Plan.Trace).Cycles);
}

//===----------------------------------------------------------------------===//
// Windowed outages (the serve loop's dynamic fault timeline).
//===----------------------------------------------------------------------===//

TEST(FaultTimelineTest, ParsesWindowedOutages) {
  DiagnosticEngine DE;
  auto M = FaultModel::parse("dead@100..200:3,dead@50..80:1", DE);
  ASSERT_TRUE(M.has_value()) << DE.render();
  EXPECT_TRUE(M->hasTimeline());
  ASSERT_EQ(M->outages().size(), 2u);
  // Sorted by (StartNs, Channel), stored in ns (spec is microseconds).
  EXPECT_EQ(M->outages()[0].Channel, 1);
  EXPECT_EQ(M->outages()[0].StartNs, 50'000);
  EXPECT_EQ(M->outages()[0].EndNs, 80'000);
  EXPECT_EQ(M->outages()[1].Channel, 3);
  EXPECT_EQ(M->outages()[1].StartNs, 100'000);
  EXPECT_EQ(M->outages()[1].EndNs, 200'000);
  // Outages are dynamic: the channel is not *statically* dead.
  EXPECT_FALSE(M->channelDead(3));
  EXPECT_EQ(M->faultCount(), 2);
}

TEST(FaultTimelineTest, DeadAtEvaluatesWindowsOnTheVirtualClock) {
  DiagnosticEngine DE;
  auto M = FaultModel::parse("dead@100..200:3,dead:0", DE);
  ASSERT_TRUE(M.has_value());
  // Window is [t1, t2): closed at the start, open at the end.
  EXPECT_FALSE(M->deadAt(3, 99'999));
  EXPECT_TRUE(M->deadAt(3, 100'000));
  EXPECT_TRUE(M->deadAt(3, 199'999));
  EXPECT_FALSE(M->deadAt(3, 200'000));
  // Other channels never match the window.
  EXPECT_FALSE(M->deadAt(2, 150'000));
  // Statically dead channels are dead at every instant.
  EXPECT_TRUE(M->deadAt(0, 0));
  EXPECT_TRUE(M->deadAt(0, int64_t(1) << 40));
}

TEST(FaultTimelineTest, OverlappingWindowsUnion) {
  FaultModel M;
  M.addOutage(ChannelOutage{2, 100, 300});
  M.addOutage(ChannelOutage{2, 250, 500});
  EXPECT_TRUE(M.deadAt(2, 280));  // inside both
  EXPECT_TRUE(M.deadAt(2, 400));  // inside the second only
  EXPECT_FALSE(M.deadAt(2, 500)); // past both
}

TEST(FaultTimelineTest, DescribePrintsWindowsInMicroseconds) {
  DiagnosticEngine DE;
  auto M = FaultModel::parse("dead@100..200:3,dead:1", DE);
  ASSERT_TRUE(M.has_value());
  // Windows print exactly (us-aligned storage), in the spec grammar's
  // spelling, alongside the static classes.
  const std::string Desc = M->describe();
  EXPECT_NE(Desc.find("dead@100..200:3"), std::string::npos) << Desc;
  EXPECT_NE(Desc.find("dead:1"), std::string::npos) << Desc;
  // Each individual entry re-parses (describe joins entries with spaces
  // for display, so the whole string is not itself a spec).
  auto Again = FaultModel::parse("dead@100..200:3", DE);
  ASSERT_TRUE(Again.has_value()) << DE.render();
  EXPECT_EQ(Again->outages().size(), 1u);
  EXPECT_EQ(Again->describe(), "dead@100..200:3");
}

TEST(FaultTimelineTest, MalformedWindowsAreDiagnostics) {
  for (const char *Bad :
       {"dead@200..100:0", "dead@100..100:0", "dead@x..y:0", "dead@100:0",
        "dead@100..:0", "dead@..200:0", "dead@100..200:4096",
        "dead@100..200"}) {
    DiagnosticEngine DE;
    EXPECT_FALSE(FaultModel::parse(Bad, DE).has_value()) << Bad;
    EXPECT_TRUE(DE.hasCode(DiagCode::FaultBadSpec)) << Bad;
  }
}

TEST(FaultTimelineTest, ChaosTimelineIsSeededAndBounded) {
  const FaultModel A = FaultModel::chaosTimeline(9, 12, 2'000'000);
  const FaultModel B = FaultModel::chaosTimeline(9, 12, 2'000'000);
  EXPECT_EQ(A.describe(), B.describe());
  EXPECT_TRUE(A.hasTimeline());
  ASSERT_GE(A.outages().size(), 1u);
  ASSERT_LE(A.outages().size(), 4u);
  for (const ChannelOutage &O : A.outages()) {
    EXPECT_GE(O.Channel, 0);
    EXPECT_LT(O.Channel, 12);
    EXPECT_GE(O.StartNs, 0);
    EXPECT_GT(O.EndNs, O.StartNs);
    // us-aligned so describe() prints exactly.
    EXPECT_EQ(O.StartNs % 1000, 0);
    EXPECT_EQ(O.EndNs % 1000, 0);
  }
  // The static fault classes stay empty: a timeline is serve-only.
  EXPECT_EQ(A.faultCount(), static_cast<int>(A.outages().size()));
  // Seeds diverge, and the chaos() stream is untouched by the timeline
  // generator (its outputs are pinned by the tests above).
  EXPECT_NE(FaultModel::chaosTimeline(1, 12, 2'000'000).describe(),
            FaultModel::chaosTimeline(2, 12, 2'000'000).describe());
  EXPECT_TRUE(FaultModel::chaosTimeline(5, 0, 1000).empty());
  EXPECT_TRUE(FaultModel::chaosTimeline(5, 12, 0).empty());
}
