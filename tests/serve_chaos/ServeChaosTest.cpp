//===- tests/serve_chaos/ServeChaosTest.cpp - Chaos-under-serve -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving-resilience invariants (docs/INTERNALS.md section 14), driven
// by a seeded (load spec x fault timeline) matrix:
//
//  - Conservation: every admitted request ends in exactly one terminal
//    state, and the shed / floor reason breakdowns tile their totals.
//  - Quarantine exclusion: a channel between its quarantine and readmit
//    events never appears in a grant.
//  - Determinism: summaries are byte-identical for --jobs=1 and --jobs=4
//    even with outages opening and closing mid-stream.
//  - Breaker lifecycle: the flight recorder sees trip -> probe ->
//    (healthy) readmit in that order.
//
//===----------------------------------------------------------------------===//

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "obs/FlightRecorder.h"
#include "obs/Scope.h"
#include "pim/FaultModel.h"
#include "serve/Server.h"

using namespace pf;
using namespace pf::serve;

namespace {

std::vector<std::pair<std::string, Graph>> tenants() {
  std::vector<std::pair<std::string, Graph>> Models;
  Models.emplace_back("toy-a", buildToy());
  Models.emplace_back("toy-b", buildToy());
  return Models;
}

/// The contended baseline of ServerTest plus the resilience knobs: a
/// 12-channel pool under 16-channel plans, a breaker that trips on the
/// first failure, and a cooldown short enough to probe mid-stream.
ServerOptions chaosOptions(int Jobs, FaultModel Faults) {
  ServerOptions SO;
  SO.Flow.PimChannels = 8;
  SO.Flow.PimFloor = 2;
  SO.PoolChannels = 12;
  SO.MaxInflight = 3;
  SO.MaxQueue = 2;
  SO.Jobs = Jobs;
  SO.BreakerThreshold = 1;
  SO.BreakerCooldownUs = 100;
  SO.RetryBudget = 8;
  SO.Faults = std::move(Faults);
  return SO;
}

LoadSpec chaosSpec(uint64_t Seed) {
  LoadSpec Spec;
  Spec.Count = 24;
  Spec.Seed = Seed;
  Spec.MeanGapUs = 50.0;
  Spec.Batches = {1, 4};
  Spec.DeadlineUs = 4000;
  return Spec;
}

/// A hand-written timeline that reliably interrupts live grants: channel 0
/// is in every full-pool grant, and the windows sit inside the stream's
/// first few milliseconds.
FaultModel midStreamOutages() {
  DiagnosticEngine DE;
  auto F = FaultModel::parse("dead@200..700:0,dead@900..1600:0", DE);
  EXPECT_TRUE(F.has_value()) << DE.render();
  return F ? *std::move(F) : FaultModel();
}

void checkConservation(const ServeResult &R, int Count) {
  ASSERT_EQ(static_cast<int>(R.Sessions.size()), Count);
  EXPECT_EQ(R.Served + R.Degraded + R.FloorFallbacks + R.Shed, Count);
  EXPECT_EQ(R.Shed, R.ShedQueueFull + R.ShedDeadline);
  EXPECT_EQ(R.FloorFallbacks, R.FloorBelowFloor + R.FloorRetryBudget);

  int Retries = 0, Interrupts = 0, Met = 0, Missed = 0, Expired = 0;
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    Retries += S.Retries;
    Interrupts += S.Interrupts;
    // Attempt conservation (docs/INTERNALS.md section 15): every ran
    // request's attempt log tiles its execution history — one entry per
    // admission or interrupt re-grant — and shed requests never open one.
    if (S.ran()) {
      ASSERT_EQ(S.Attempts.size(), static_cast<size_t>(S.Interrupts) + 1)
          << "req " << S.Req.Id;
      EXPECT_EQ(S.Attempts.front().StartNs, S.StartNs)
          << "req " << S.Req.Id;
      EXPECT_EQ(S.Attempts.back().EndNs, S.EndNs) << "req " << S.Req.Id;
      for (size_t A = 0; A + 1 < S.Attempts.size(); ++A) {
        EXPECT_TRUE(S.Attempts[A].Interrupted) << "req " << S.Req.Id;
        EXPECT_EQ(S.Attempts[A].EndNs, S.Attempts[A + 1].StartNs)
            << "req " << S.Req.Id;
      }
      EXPECT_FALSE(S.Attempts.back().Interrupted) << "req " << S.Req.Id;
    } else {
      EXPECT_TRUE(S.Attempts.empty()) << "req " << S.Req.Id;
    }
    switch (S.deadlineState()) {
    case DeadlineState::Met:
      ++Met;
      break;
    case DeadlineState::MissedRun:
      ++Missed;
      break;
    case DeadlineState::ExpiredQueued:
      ++Expired;
      break;
    case DeadlineState::None:
      break;
    }
    switch (S.Outcome) {
    case RequestOutcome::Served:
      EXPECT_TRUE(S.Reason == OutcomeReason::None ||
                  S.Reason == OutcomeReason::FaultRetry)
          << "req " << S.Req.Id;
      break;
    case RequestOutcome::Degraded:
      EXPECT_TRUE(S.Reason == OutcomeReason::Contention ||
                  S.Reason == OutcomeReason::FaultRetry)
          << "req " << S.Req.Id;
      break;
    case RequestOutcome::FloorFallback:
      EXPECT_TRUE(S.Reason == OutcomeReason::BelowFloor ||
                  S.Reason == OutcomeReason::RetryBudget)
          << "req " << S.Req.Id;
      EXPECT_EQ(S.channelsGranted(), 0);
      break;
    case RequestOutcome::Shed:
      EXPECT_TRUE(S.Reason == OutcomeReason::QueueFull ||
                  S.Reason == OutcomeReason::DeadlineExpired)
          << "req " << S.Req.Id;
      EXPECT_EQ(S.channelsGranted(), 0);
      break;
    }
    if (S.Reason == OutcomeReason::FaultRetry) {
      EXPECT_TRUE(S.ran());
      EXPECT_GE(S.Retries, 1);
    }
  }
  EXPECT_EQ(R.RetriesUsed, Retries);
  EXPECT_EQ(R.FaultInterrupts, Interrupts);
  EXPECT_EQ(R.DeadlineMet, Met);
  EXPECT_EQ(R.DeadlineMissedRun, Missed);
  EXPECT_EQ(R.DeadlineExpiredQueued, Expired);
  EXPECT_EQ(R.DeadlineExpiredQueued, R.ShedDeadline);
}

TEST(ServeChaosTest, ConservationHoldsAcrossTheMatrix) {
  const uint64_t Seeds[] = {3, 7, 11};
  for (uint64_t Seed : Seeds) {
    std::vector<FaultModel> Timelines;
    Timelines.push_back(midStreamOutages());
    Timelines.push_back(FaultModel::chaosTimeline(Seed, 12, 2'000'000));
    Timelines.push_back(FaultModel()); // healthy machine control
    for (size_t TI = 0; TI < Timelines.size(); ++TI) {
      Server S(tenants(), chaosOptions(2, Timelines[TI]));
      DiagnosticEngine DE;
      const ServeResult R = S.run(chaosSpec(Seed), &DE);
      SCOPED_TRACE("seed " + std::to_string(Seed) + " timeline " +
                   std::to_string(TI));
      EXPECT_FALSE(DE.hasErrors()) << DE.render();
      checkConservation(R, 24);
    }
  }
}

TEST(ServeChaosTest, QuarantinedChannelIsNeverGranted) {
  Server S(tenants(), chaosOptions(1, midStreamOutages()));
  const ServeResult R = S.run(chaosSpec(7));
  ASSERT_FALSE(R.HealthEvents.empty());
  ASSERT_FALSE(R.Grants.empty());

  // Replay the health log into per-channel quarantine intervals, then
  // demand every grant instant falls outside them. Boundary instants are
  // legal: a readmit and a grant at the same virtual time are ordered
  // readmit-first by the event loop's tie-break priorities.
  struct Interval {
    int64_t From, To;
  };
  std::map<int, std::vector<Interval>> Closed;
  std::map<int, int64_t> OpenSince;
  for (const BreakerEvent &E : R.HealthEvents) {
    if (E.K == BreakerEvent::Kind::Quarantine) {
      OpenSince.emplace(E.Channel, E.TimeNs);
    } else if (E.K == BreakerEvent::Kind::Readmit) {
      auto It = OpenSince.find(E.Channel);
      ASSERT_NE(It, OpenSince.end())
          << "readmit of channel " << E.Channel << " without quarantine";
      Closed[E.Channel].push_back({It->second, E.TimeNs});
      OpenSince.erase(It);
    }
  }
  for (const ServeResult::GrantEvent &G : R.Grants)
    for (int Ch : G.Channels) {
      auto It = Closed.find(Ch);
      if (It != Closed.end()) {
        for (const Interval &I : It->second) {
          EXPECT_FALSE(G.TimeNs > I.From && G.TimeNs < I.To)
              << "channel " << Ch << " granted to req " << G.ReqId
              << " at " << G.TimeNs << " inside quarantine [" << I.From
              << ", " << I.To << "]";
        }
      }
      auto Open = OpenSince.find(Ch);
      if (Open != OpenSince.end()) {
        EXPECT_LE(G.TimeNs, Open->second)
            << "channel " << Ch << " granted to req " << G.ReqId
            << " after its unclosed quarantine at " << Open->second;
      }
    }
  // The timeline interrupted something and the breaker acted on it.
  EXPECT_GT(R.FaultInterrupts, 0);
  EXPECT_GT(R.BreakerTrips, 0);
}

TEST(ServeChaosTest, SummariesAreByteIdenticalAcrossJobsUnderChaos) {
  std::string Summaries[2];
  for (int I = 0; I < 2; ++I) {
    Server S(tenants(), chaosOptions(I == 0 ? 1 : 4, midStreamOutages()));
    Summaries[I] = renderServeSummary(S.run(chaosSpec(7)));
  }
  EXPECT_EQ(Summaries[0], Summaries[1]);
  // The run under comparison actually exercised the fault path.
  EXPECT_NE(Summaries[0].find("reason=fault-retry"), std::string::npos);
}

TEST(ServeChaosTest, SpentRetryBudgetDemotesToTheFloor) {
  ServerOptions SO = chaosOptions(1, midStreamOutages());
  SO.RetryBudget = 0;
  Server S(tenants(), SO);
  const ServeResult R = S.run(chaosSpec(7));
  EXPECT_GT(R.FaultInterrupts, 0);
  EXPECT_EQ(R.RetriesUsed, 0);
  EXPECT_GT(R.RetryBudgetDenied, 0);
  EXPECT_GT(R.FloorRetryBudget, 0);
  checkConservation(R, 24);
}

TEST(ServeChaosTest, DeadlinesShedAndClassify) {
  obs::Scope Caller;
  obs::ScopeGuard Guard(Caller);
  // Tight 30us budget under heavy contention: some requests expire while
  // queued, some complete late, some make it.
  ServerOptions SO;
  SO.Flow.PimChannels = 8;
  SO.Flow.PimFloor = 2;
  SO.PoolChannels = 12;
  SO.MaxInflight = 2;
  SO.MaxQueue = 4;
  SO.Jobs = 1;
  LoadSpec Spec;
  Spec.Count = 32;
  Spec.Seed = 9;
  Spec.MeanGapUs = 2.0;
  Spec.Batches = {1, 4};
  Spec.DeadlineUs = 30;
  Server S(tenants(), SO);
  const ServeResult R = S.run(Spec);

  EXPECT_GT(R.DeadlineMet, 0);
  EXPECT_GT(R.DeadlineMissedRun, 0);
  EXPECT_GT(R.DeadlineExpiredQueued, 0);
  EXPECT_EQ(R.ShedDeadline, R.DeadlineExpiredQueued);
  EXPECT_EQ(R.Shed, R.ShedQueueFull + R.ShedDeadline);

  int64_t Met = 0, Missed = 0, Expired = 0;
  for (const auto &[Name, V] : Caller.registry().counterSnapshot()) {
    if (Name == "serve.deadline.met")
      Met = V;
    else if (Name == "serve.deadline.missed_run")
      Missed = V;
    else if (Name == "serve.deadline.expired_queued")
      Expired = V;
  }
  EXPECT_EQ(Met, R.DeadlineMet);
  EXPECT_EQ(Missed, R.DeadlineMissedRun);
  EXPECT_EQ(Expired, R.DeadlineExpiredQueued);

  bool SawSlack = false, SawOverrun = false;
  for (const auto &[Name, Stats] : Caller.metrics().histogramSnapshot()) {
    if (Name == "serve.deadline_slack_ns") {
      SawSlack = true;
      EXPECT_EQ(Stats.Count, R.DeadlineMet);
    } else if (Name == "serve.deadline_overrun_ns") {
      SawOverrun = true;
      EXPECT_EQ(Stats.Count, R.DeadlineMissedRun);
    }
  }
  EXPECT_TRUE(SawSlack);
  EXPECT_TRUE(SawOverrun);
}

TEST(ServeChaosTest, BreakerLifecycleIsOrderedInTheFlightRecorder) {
  obs::FlightRecorder &FR = obs::FlightRecorder::instance();
  FR.clear();
  FR.setEnabled(true);

  Server S(tenants(), chaosOptions(1, midStreamOutages()));
  const ServeResult R = S.run(chaosSpec(7));
  ASSERT_GT(R.BreakerTrips, 0);

  std::vector<obs::FlightEvent> Breaker;
  for (const obs::FlightEvent &E : FR.merged())
    if (E.Kind == obs::FlightEventKind::BreakerTrip ||
        E.Kind == obs::FlightEventKind::BreakerProbe ||
        E.Kind == obs::FlightEventKind::BreakerReadmit)
      Breaker.push_back(E);
  ASSERT_FALSE(Breaker.empty());

  // Single-threaded loop: Seq order == program order == virtual-time
  // order. The first breaker event must be the trip; every readmit must be
  // immediately preceded by a healthy probe (B == 1) of the same channel.
  EXPECT_EQ(static_cast<int>(Breaker.front().Kind),
            static_cast<int>(obs::FlightEventKind::BreakerTrip));
  int Trips = 0, Probes = 0, Readmits = 0;
  for (size_t I = 0; I < Breaker.size(); ++I) {
    const obs::FlightEvent &E = Breaker[I];
    ASSERT_TRUE(I == 0 || Breaker[I - 1].Seq < E.Seq);
    ASSERT_TRUE(I == 0 || Breaker[I - 1].Cycle <= E.Cycle);
    switch (E.Kind) {
    case obs::FlightEventKind::BreakerTrip:
      ++Trips;
      break;
    case obs::FlightEventKind::BreakerProbe:
      ++Probes;
      break;
    case obs::FlightEventKind::BreakerReadmit: {
      ++Readmits;
      ASSERT_GT(I, 0u);
      const obs::FlightEvent &Prev = Breaker[I - 1];
      EXPECT_EQ(static_cast<int>(Prev.Kind),
                static_cast<int>(obs::FlightEventKind::BreakerProbe));
      EXPECT_EQ(Prev.A, E.A); // same channel
      EXPECT_EQ(Prev.B, 1);   // the probe that found it healthy
      break;
    }
    default:
      break;
    }
  }
  EXPECT_EQ(Trips, R.BreakerTrips);
  EXPECT_EQ(Probes, R.BreakerProbes);
  EXPECT_EQ(Readmits, R.BreakerReadmits);
  FR.clear();
}

TEST(ServeChaosTest, StaticDeadChannelsStayQuarantinedForever) {
  FaultModel F;
  F.addDead(0);
  Server S(tenants(), chaosOptions(1, F));
  const ServeResult R = S.run(chaosSpec(3));
  checkConservation(R, 24);
  for (const ServeResult::GrantEvent &G : R.Grants)
    for (int Ch : G.Channels)
      EXPECT_NE(Ch, 0) << "statically dead channel granted to req "
                       << G.ReqId;
  // No outage window ever closes over a static death: no readmissions.
  EXPECT_EQ(R.BreakerReadmits, 0);
  EXPECT_EQ(R.ChannelRecoveries, 0);
}

} // namespace
