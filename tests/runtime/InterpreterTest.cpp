//===- tests/runtime/InterpreterTest.cpp - reference executor ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include <cmath>
#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

/// Sets explicit weights on the single (first) parameter of \p G.
void setWeights(Graph &G, std::vector<float> Data) {
  for (const Value &V : G.values()) {
    if (!V.IsParam)
      continue;
    Tensor T(V.Shape);
    ASSERT_EQ(static_cast<size_t>(T.numElements()), Data.size());
    for (size_t I = 0; I < Data.size(); ++I)
      T.at(static_cast<int64_t>(I)) = Data[I];
    G.setParamData(V.Id, std::move(T));
    return;
  }
  FAIL() << "graph has no parameter";
}

Tensor makeTensor(TensorShape Shape, std::vector<float> Data) {
  Tensor T(std::move(Shape));
  EXPECT_EQ(static_cast<size_t>(T.numElements()), Data.size());
  for (size_t I = 0; I < Data.size(); ++I)
    T.at(static_cast<int64_t>(I)) = Data[I];
  return T;
}

} // namespace

TEST(InterpreterTest, IdentityConv1x1) {
  // 1x1 conv with identity weights on 2 channels.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 2, 2, 2});
  B.output(B.conv2d(X, 2, 1, 1, 0));
  Graph G = B.take();
  setWeights(G, {1, 0, 0, 1}); // [1,1,2,2]: W[ci][co] identity.
  Tensor In = makeTensor(TensorShape{1, 2, 2, 2},
                         {1, 2, 3, 4, 5, 6, 7, 8});
  auto Out = Interpreter(G).run({In});
  ASSERT_EQ(Out.size(), 1u);
  for (int64_t I = 0; I < 8; ++I)
    EXPECT_FLOAT_EQ(Out[0].at(I), In.at(I));
}

TEST(InterpreterTest, Conv1x1MixesChannels) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 1, 1, 2});
  B.output(B.conv2d(X, 1, 1, 1, 0));
  Graph G = B.take();
  setWeights(G, {2, 3}); // out = 2*c0 + 3*c1
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 1, 1, 2},
                                            {10, 100})});
  EXPECT_FLOAT_EQ(Out[0].at(0), 320.0f);
}

TEST(InterpreterTest, Conv3x3SumFilter) {
  // All-ones 3x3 filter = neighborhood sum with zero padding.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 3, 3, 1});
  B.output(B.conv2d(X, 1, 3, 1, 1));
  Graph G = B.take();
  setWeights(G, std::vector<float>(9, 1.0f));
  auto Out = Interpreter(G).run(
      {makeTensor(TensorShape{1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9})});
  // Center output = sum of all = 45; corner (0,0) = 1+2+4+5 = 12.
  EXPECT_FLOAT_EQ(Out[0].at4(0, 1, 1, 0), 45.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 0, 0, 0), 12.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 2, 2, 0), 5.0f + 6 + 8 + 9);
}

TEST(InterpreterTest, ConvStride2) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 1});
  B.output(B.conv2d(X, 1, 1, 2, 0));
  Graph G = B.take();
  setWeights(G, {1});
  std::vector<float> In(16);
  for (int I = 0; I < 16; ++I)
    In[static_cast<size_t>(I)] = static_cast<float>(I);
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 4, 4, 1}, In)});
  EXPECT_EQ(Out[0].shape(), (TensorShape{1, 2, 2, 1}));
  EXPECT_FLOAT_EQ(Out[0].at4(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 0, 1, 0), 2.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 1, 0, 0), 8.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 1, 1, 0), 10.0f);
}

TEST(InterpreterTest, DepthwiseConvKeepsChannelsSeparate) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 1, 1, 2});
  B.output(B.dwConv(X, 1, 1, 0));
  Graph G = B.take();
  setWeights(G, {10, 100}); // per-channel scale
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 1, 1, 2},
                                            {1, 2})});
  EXPECT_FLOAT_EQ(Out[0].at(0), 10.0f);
  EXPECT_FLOAT_EQ(Out[0].at(1), 200.0f);
}

TEST(InterpreterTest, GemmWithBias) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 2});
  B.output(B.gemm(X, 2, /*WithBias=*/true));
  Graph G = B.take();
  // Set weight [2,2] and bias [2] explicitly.
  std::vector<ValueId> Params;
  for (const Value &V : G.values())
    if (V.IsParam)
      Params.push_back(V.Id);
  ASSERT_EQ(Params.size(), 2u);
  G.setParamData(Params[0],
                 makeTensor(TensorShape{2, 2}, {1, 2, 3, 4}));
  G.setParamData(Params[1], makeTensor(TensorShape{2}, {10, 20}));
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 2}, {1, 1})});
  // y = x*W + b = [1+3, 2+4] + [10,20] = [14, 26].
  EXPECT_FLOAT_EQ(Out[0].at(0), 14.0f);
  EXPECT_FLOAT_EQ(Out[0].at(1), 26.0f);
}

TEST(InterpreterTest, Activations) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 1, 1, 4});
  B.output(B.relu(X));
  B.output(B.relu6(X));
  B.output(B.sigmoid(X));
  B.output(B.silu(X));
  Graph G = B.take();
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 1, 1, 4},
                                            {-2, 0, 3, 10})});
  EXPECT_FLOAT_EQ(Out[0].at(0), 0.0f);
  EXPECT_FLOAT_EQ(Out[0].at(3), 10.0f);
  EXPECT_FLOAT_EQ(Out[1].at(3), 6.0f); // relu6 clamps.
  EXPECT_NEAR(Out[2].at(1), 0.5f, 1e-6); // sigmoid(0).
  EXPECT_NEAR(Out[3].at(2), 3.0f / (1.0f + std::exp(-3.0f)), 1e-5);
}

TEST(InterpreterTest, SoftmaxRowsSumToOne) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{2, 4});
  B.output(B.softmax(X));
  Graph G = B.take();
  auto Out = Interpreter(G).run(
      {makeTensor(TensorShape{2, 4}, {1, 2, 3, 4, -1, 0, 1, 2})});
  for (int R = 0; R < 2; ++R) {
    float Sum = 0;
    for (int C = 0; C < 4; ++C)
      Sum += Out[0].at(R * 4 + C);
    EXPECT_NEAR(Sum, 1.0f, 1e-5);
  }
  EXPECT_GT(Out[0].at(3), Out[0].at(0)); // Monotone in logits.
}

TEST(InterpreterTest, AddAndBroadcastMul) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 1, 2, 2});
  ValueId S = B.input("s", TensorShape{1, 1, 1, 2});
  B.output(B.add(X, X));
  B.output(B.mul(X, S));
  Graph G = B.take();
  auto Out = Interpreter(G).run(
      {makeTensor(TensorShape{1, 1, 2, 2}, {1, 2, 3, 4}),
       makeTensor(TensorShape{1, 1, 1, 2}, {10, 100})});
  EXPECT_FLOAT_EQ(Out[0].at(2), 6.0f);
  EXPECT_FLOAT_EQ(Out[1].at(0), 10.0f);
  EXPECT_FLOAT_EQ(Out[1].at(1), 200.0f);
  EXPECT_FLOAT_EQ(Out[1].at(2), 30.0f);
  EXPECT_FLOAT_EQ(Out[1].at(3), 400.0f);
}

TEST(InterpreterTest, MaxAndAvgPool) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 2, 2, 1});
  B.output(B.maxPool(X, 2, 2));
  B.output(B.avgPool(X, 2, 2));
  B.output(B.globalAvgPool(X));
  Graph G = B.take();
  auto Out = Interpreter(G).run(
      {makeTensor(TensorShape{1, 2, 2, 1}, {1, 2, 3, 4})});
  EXPECT_FLOAT_EQ(Out[0].at(0), 4.0f);
  EXPECT_FLOAT_EQ(Out[1].at(0), 2.5f);
  EXPECT_FLOAT_EQ(Out[2].at(0), 2.5f);
}

TEST(InterpreterTest, PadSliceConcatRoundTrip) {
  // slice(pad(x)) and concat(slice0, slice1) recover x exactly.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 2, 1});
  ValueId P = B.pad(X, 2, 1, 0, 0);
  ValueId Unpad = B.slice(P, 1, 2, 6);
  ValueId Lo = B.slice(X, 1, 0, 2);
  ValueId Hi = B.slice(X, 1, 2, 4);
  ValueId Joined = B.concat({Lo, Hi}, 1);
  B.output(Unpad);
  B.output(Joined);
  Graph G = B.take();
  Tensor In = Interpreter::randomInput(TensorShape{1, 4, 2, 1}, 42);
  auto Out = Interpreter(G).run({In});
  for (int64_t I = 0; I < In.numElements(); ++I) {
    EXPECT_FLOAT_EQ(Out[0].at(I), In.at(I));
    EXPECT_FLOAT_EQ(Out[1].at(I), In.at(I));
  }
}

TEST(InterpreterTest, PadZeroFills) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 1, 1, 1});
  B.output(B.pad(X, 1, 1, 1, 1));
  Graph G = B.take();
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 1, 1, 1}, {7})});
  EXPECT_FLOAT_EQ(Out[0].at4(0, 1, 1, 0), 7.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Out[0].at4(0, 2, 2, 0), 0.0f);
}

TEST(InterpreterTest, BatchNormNormalizes) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 1, 1, 1});
  B.output(B.batchNorm(X));
  Graph G = B.take();
  std::vector<ValueId> Params;
  for (const Value &V : G.values())
    if (V.IsParam)
      Params.push_back(V.Id);
  ASSERT_EQ(Params.size(), 4u);
  G.setParamData(Params[0], makeTensor(TensorShape{1}, {2.0f}));  // scale
  G.setParamData(Params[1], makeTensor(TensorShape{1}, {1.0f}));  // bias
  G.setParamData(Params[2], makeTensor(TensorShape{1}, {3.0f}));  // mean
  G.setParamData(Params[3], makeTensor(TensorShape{1}, {4.0f}));  // var
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 1, 1, 1}, {5})});
  // (5-3)/sqrt(4+eps)*2+1 ~= 3.
  EXPECT_NEAR(Out[0].at(0), 3.0f, 1e-3);
}

TEST(InterpreterTest, LayerNormNormalizesRows) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4});
  B.output(B.layerNorm(X));
  Graph G = B.take();
  std::vector<ValueId> Params;
  for (const Value &V : G.values())
    if (V.IsParam)
      Params.push_back(V.Id);
  ASSERT_EQ(Params.size(), 2u);
  G.setParamData(Params[0], makeTensor(TensorShape{4}, {1, 1, 1, 1}));
  G.setParamData(Params[1], makeTensor(TensorShape{4}, {0, 0, 0, 0}));
  auto Out = Interpreter(G).run({makeTensor(TensorShape{1, 4},
                                            {1, 2, 3, 4})});
  // Mean 2.5, var 1.25: normalized = (x - 2.5)/sqrt(1.25).
  const float Inv = 1.0f / std::sqrt(1.25f + 1e-5f);
  EXPECT_NEAR(Out[0].at(0), -1.5f * Inv, 1e-5);
  EXPECT_NEAR(Out[0].at(3), 1.5f * Inv, 1e-5);
  float Sum = 0;
  for (int I = 0; I < 4; ++I)
    Sum += Out[0].at(I);
  EXPECT_NEAR(Sum, 0.0f, 1e-5);
}

TEST(InterpreterTest, MatMulPlainAndTransposed) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{2, 2});
  ValueId Y = B.input("y", TensorShape{2, 2});
  B.output(B.matmul(X, Y));
  B.output(B.matmul(X, Y, /*TransposeB=*/true));
  Graph G = B.take();
  auto Out = Interpreter(G).run({makeTensor(TensorShape{2, 2}, {1, 2, 3, 4}),
                                 makeTensor(TensorShape{2, 2},
                                            {5, 6, 7, 8})});
  // X*Y = [[19,22],[43,50]]
  EXPECT_FLOAT_EQ(Out[0].at(0), 19.0f);
  EXPECT_FLOAT_EQ(Out[0].at(3), 50.0f);
  // X*Y^T = [[17,23],[39,53]]
  EXPECT_FLOAT_EQ(Out[1].at(0), 17.0f);
  EXPECT_FLOAT_EQ(Out[1].at(3), 53.0f);
}

TEST(InterpreterTest, ParamMaterializationIsDeterministic) {
  Graph G("t");
  ValueId W = G.addParam("w", TensorShape{16});
  Tensor A = Interpreter::materializeParam(G, W);
  Tensor B = Interpreter::materializeParam(G, W);
  for (int64_t I = 0; I < 16; ++I)
    EXPECT_EQ(A.at(I), B.at(I));
}

TEST(InterpreterTest, ToyModelRuns) {
  Graph G = buildToy();
  Tensor In = Interpreter::randomInput(G.value(G.graphInputs()[0]).Shape, 1);
  auto Out = Interpreter(G).run({In});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].shape(), (TensorShape{1, 10}));
  for (int64_t I = 0; I < 10; ++I)
    EXPECT_TRUE(std::isfinite(Out[0].at(I)));
}
