//===- tests/runtime/ExecutionEngineTest.cpp - engine tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionEngine.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

namespace {

SystemConfig dualConfig() { return SystemConfig::dual(16, true); }

/// Two independent convs feeding a concat; one can go to PIM.
Graph parallelPair() {
  GraphBuilder B("pair");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId A = B.conv2d(X, 32, 1, 1, 0);
  ValueId C = B.conv2d(X, 32, 1, 1, 0);
  B.output(B.concat({A, C}, 1));
  return B.take();
}

} // namespace

TEST(ExecutionEngineTest, TimelineRespectsDependencies) {
  Graph G = parallelPair();
  ExecutionEngine E(dualConfig());
  Timeline TL = E.execute(G);
  for (const NodeSchedule &S : TL.Nodes) {
    EXPECT_GE(S.StartNs, 0.0);
    EXPECT_GE(S.EndNs, S.StartNs);
    for (ValueId In : G.node(S.Id).Inputs) {
      NodeId P = G.producer(In);
      if (P == InvalidNode)
        continue;
      EXPECT_GE(S.StartNs, TL.scheduleOf(P).EndNs - 1e-9);
    }
  }
  EXPECT_GT(TL.TotalNs, 0.0);
}

TEST(ExecutionEngineTest, IndependentNodesOverlapAcrossDevices) {
  Graph G = parallelPair();
  // Annotate one conv for PIM.
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d) {
      G.node(Id).Dev = Device::Pim;
      break;
    }
  ExecutionEngine E(dualConfig());
  Timeline TL = E.execute(G);
  // Find the two conv schedules; their intervals must overlap.
  std::vector<const NodeSchedule *> Convs;
  for (const NodeSchedule &S : TL.Nodes)
    if (G.node(S.Id).Kind == OpKind::Conv2d)
      Convs.push_back(&S);
  ASSERT_EQ(Convs.size(), 2u);
  const double OverlapStart =
      std::max(Convs[0]->StartNs, Convs[1]->StartNs);
  const double OverlapEnd = std::min(Convs[0]->EndNs, Convs[1]->EndNs);
  EXPECT_GT(OverlapEnd, OverlapStart);
  // And the makespan beats serial execution.
  EXPECT_LT(TL.TotalNs,
            Convs[0]->durationNs() + Convs[1]->durationNs() + 1000.0);
}

TEST(ExecutionEngineTest, SameDeviceSerializes) {
  Graph G = parallelPair();
  ExecutionEngine E(dualConfig());
  Timeline TL = E.execute(G);
  std::vector<const NodeSchedule *> Convs;
  for (const NodeSchedule &S : TL.Nodes)
    if (G.node(S.Id).Kind == OpKind::Conv2d)
      Convs.push_back(&S);
  ASSERT_EQ(Convs.size(), 2u);
  const double OverlapStart =
      std::max(Convs[0]->StartNs, Convs[1]->StartNs);
  const double OverlapEnd = std::min(Convs[0]->EndNs, Convs[1]->EndNs);
  EXPECT_LE(OverlapEnd - OverlapStart, 1e-9);
}

TEST(ExecutionEngineTest, FusedElementwiseIsFree) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId C = B.conv2d(X, 32, 1, 1, 0);
  B.output(B.relu(C));
  Graph G = B.take();
  ExecutionEngine E(dualConfig());
  Timeline TL = E.execute(G);
  for (const NodeSchedule &S : TL.Nodes)
    if (G.node(S.Id).Kind == OpKind::Relu) {
      EXPECT_EQ(S.durationNs(), 0.0);
      EXPECT_EQ(S.EnergyJ, 0.0);
    }
}

TEST(ExecutionEngineTest, CrossDeviceHandoffCostsSync) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId C = B.conv2d(X, 32, 1, 1, 0);
  B.output(B.maxPool(C, 2, 2));
  Graph G = B.take();
  NodeId Conv = G.topoOrder()[0];
  NodeId Pool = G.topoOrder()[1];
  SystemConfig Cfg = dualConfig();

  G.node(Conv).Dev = Device::Pim;
  Timeline TL = ExecutionEngine(Cfg).execute(G);
  const double Gap =
      TL.scheduleOf(Pool).StartNs - TL.scheduleOf(Conv).EndNs;
  EXPECT_NEAR(Gap, Cfg.SyncOverheadNs, 1.0);
}

TEST(ExecutionEngineTest, PimLatencyMatchesIsolatedQuery) {
  Graph G = parallelPair();
  NodeId Conv = InvalidNode;
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d) {
      Conv = Id;
      break;
    }
  SystemConfig Cfg = dualConfig();
  ExecutionEngine E(Cfg);
  const double Gpu = E.nodeLatencyNs(G, Conv, Device::Gpu);
  const double Pim = E.nodeLatencyNs(G, Conv, Device::Pim);
  EXPECT_GT(Gpu, 0.0);
  EXPECT_GT(Pim, 0.0);
  G.node(Conv).Dev = Device::Pim;
  Timeline TL = E.execute(G);
  EXPECT_NEAR(TL.scheduleOf(Conv).durationNs(), Pim, 1e-6);
}

TEST(ExecutionEngineTest, GpuOnlyConfigRejectsNothing) {
  Graph G = parallelPair();
  ExecutionEngine E(SystemConfig::gpuOnly());
  Timeline TL = E.execute(G);
  for (const NodeSchedule &S : TL.Nodes)
    EXPECT_EQ(S.Dev, Device::Gpu);
}

TEST(ExecutionEngineTest, FreeSliceConcatDoNotOccupyDevice) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId Lo = B.slice(X, 1, 0, 16);
  ValueId Hi = B.slice(X, 1, 16, 32);
  B.output(B.concat({Lo, Hi}, 1));
  Graph G = B.take();
  ExecutionEngine E(dualConfig());
  Timeline TL = E.execute(G);
  EXPECT_EQ(TL.GpuBusyNs, 0.0);
  EXPECT_EQ(TL.TotalNs, 0.0);
}

TEST(ExecutionEngineTest, DisabledMemOptMakesCopiesCostly) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId Lo = B.slice(X, 1, 0, 16);
  B.output(B.relu6(Lo));
  Graph G = B.take();
  SystemConfig On = dualConfig();
  SystemConfig Off = dualConfig();
  Off.MemoryOptimizer = false;
  const double TOn = ExecutionEngine(On).execute(G).TotalNs;
  const double TOff = ExecutionEngine(Off).execute(G).TotalNs;
  EXPECT_GT(TOff, TOn);
}

TEST(ExecutionEngineTest, ContentionSlowdownIsTiny) {
  // Section 7: the measured slowdown is a fraction of a percent.
  Graph G = parallelPair();
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d) {
      G.node(Id).Dev = Device::Pim;
      break;
    }
  SystemConfig Cfg = dualConfig();
  Cfg.ModelContention = true;
  Timeline TL = ExecutionEngine(Cfg).execute(G);
  EXPECT_GE(TL.ContentionSlowdown, 1.0);
  EXPECT_LT(TL.ContentionSlowdown, 1.02);
}

TEST(ExecutionEngineTest, EmptyGraphExecutesToEmptyTimeline) {
  Graph G("empty");
  ExecutionEngine E(dualConfig());
  DiagnosticEngine DE;
  std::optional<Timeline> TL = E.tryExecute(G, DE);
  ASSERT_TRUE(TL.has_value());
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_TRUE(TL->Nodes.empty());
  EXPECT_EQ(TL->TotalNs, 0.0);
}

TEST(ExecutionEngineTest, PimAnnotationWithoutPimChannelsIsDiagnosed) {
  Graph G = parallelPair();
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d) {
      G.node(Id).Dev = Device::Pim;
      break;
    }
  ExecutionEngine E(SystemConfig::gpuOnly());
  DiagnosticEngine DE;
  EXPECT_FALSE(E.tryExecute(G, DE).has_value());
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_NE(DE.render().find("exec.no-pim-channels"), std::string::npos);
}

TEST(ExecutionEngineTest, DependencyCycleIsDiagnosedNotHung) {
  // Two relus feeding each other through a back-edge patched in after
  // construction — unschedulable, and before tryExecute this tripped an
  // assert deep in the scheduler (or scheduled a silently partial graph).
  GraphBuilder B("cyclic");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 8});
  ValueId R1 = B.relu(X);
  ValueId R2 = B.relu(R1);
  B.output(R2);
  Graph G = B.take();
  const NodeId First = G.topoOrder()[0];
  G.node(First).Inputs[0] = R2;
  ExecutionEngine E(dualConfig());
  DiagnosticEngine DE;
  EXPECT_FALSE(E.tryExecute(G, DE).has_value());
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_NE(DE.render().find("exec.unschedulable"), std::string::npos);
}

TEST(ExecutionEngineTest, TryExecuteMatchesExecute) {
  Graph G = parallelPair();
  ExecutionEngine E(dualConfig());
  DiagnosticEngine DE;
  std::optional<Timeline> TL = E.tryExecute(G, DE);
  ASSERT_TRUE(TL.has_value());
  const Timeline Plain = E.execute(G);
  EXPECT_DOUBLE_EQ(TL->TotalNs, Plain.TotalNs);
  EXPECT_EQ(TL->Nodes.size(), Plain.Nodes.size());
}

TEST(ExecutionEngineTest, EnergyPositiveAndDecomposes) {
  Graph G = parallelPair();
  ExecutionEngine E(dualConfig());
  Timeline TL = E.execute(G);
  EXPECT_GT(TL.EnergyJ, 0.0);
  double KernelSum = 0.0;
  for (const NodeSchedule &S : TL.Nodes)
    KernelSum += S.EnergyJ;
  EXPECT_GE(TL.EnergyJ, KernelSum); // Plus idle power.
}
