//===- tests/runtime/SchedulerPropertyTest.cpp - EST properties -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling-theory properties of the execution engine's earliest-start
/// list scheduler on transformed graphs: the makespan is bounded below by
/// both the critical path and each device's total work, bounded above by
/// the serial sum, and the schedule itself is a valid (non-overlapping,
/// dependency-respecting) two-resource assignment.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"

using namespace pf;

namespace {

struct Case {
  const char *Model;
  OffloadPolicy Policy;
};

void checkTimeline(const Graph &G, const Timeline &TL,
                   double SyncOverheadNs) {
  double GpuWork = 0.0, PimWork = 0.0, Serial = 0.0;
  std::vector<const NodeSchedule *> Busy[2];
  for (const NodeSchedule &S : TL.Nodes) {
    Serial += S.durationNs();
    if (S.durationNs() <= 0.0)
      continue;
    (S.Dev == Device::Pim ? PimWork : GpuWork) += S.durationNs();
    Busy[S.Dev == Device::Pim ? 1 : 0].push_back(&S);
  }

  // Lower bounds: per-device work; upper bound: fully serial plus syncs.
  EXPECT_GE(TL.TotalNs + 1e-6, GpuWork);
  EXPECT_GE(TL.TotalNs + 1e-6, PimWork);
  EXPECT_LE(TL.TotalNs,
            Serial + SyncOverheadNs * static_cast<double>(TL.Nodes.size()) +
                1e-6);

  // No two busy intervals overlap on the same device.
  for (auto &Lane : Busy) {
    std::sort(Lane.begin(), Lane.end(),
              [](const NodeSchedule *A, const NodeSchedule *B) {
                return A->StartNs < B->StartNs;
              });
    for (size_t I = 1; I < Lane.size(); ++I)
      EXPECT_GE(Lane[I]->StartNs + 1e-6, Lane[I - 1]->EndNs)
          << G.node(Lane[I]->Id).Name << " overlaps "
          << G.node(Lane[I - 1]->Id).Name;
  }

  // Dependencies respected (critical-path validity).
  for (const NodeSchedule &S : TL.Nodes)
    for (ValueId In : G.node(S.Id).Inputs) {
      const NodeId P = G.producer(In);
      if (P != InvalidNode) {
        EXPECT_GE(S.StartNs + 1e-6, TL.scheduleOf(P).EndNs);
      }
    }
}

} // namespace

class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<const char *, int>> {};

TEST_P(SchedulerProperty, TimelineIsValidTwoResourceSchedule) {
  const auto [Model, PolicyInt] = GetParam();
  const OffloadPolicy Policy = static_cast<OffloadPolicy>(PolicyInt);
  PimFlow Flow(Policy);
  CompileResult R = Flow.compileAndRun(buildModel(Model));
  checkTimeline(R.Transformed, R.Schedule,
                Flow.config().SyncOverheadNs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerProperty,
    ::testing::Combine(
        ::testing::Values("toy", "mobilenet-v2", "squeezenet-1.1"),
        ::testing::Values(static_cast<int>(OffloadPolicy::GpuOnly),
                          static_cast<int>(OffloadPolicy::NewtonPlusPlus),
                          static_cast<int>(OffloadPolicy::PimFlowMd),
                          static_cast<int>(OffloadPolicy::PimFlow))),
    [](const auto &Info) {
      std::string Name = formatStr("%s_p%d", std::get<0>(Info.param),
                                   std::get<1>(Info.param));
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)) && C != '_')
          C = '_';
      return Name;
    });

TEST(SchedulerProperty, ExecutionIsDeterministic) {
  const Graph Model = buildMobileNetV2();
  CompileResult A = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  CompileResult B = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  EXPECT_EQ(A.endToEndNs(), B.endToEndNs());
  EXPECT_EQ(A.energyJ(), B.energyJ());
  ASSERT_EQ(A.Schedule.Nodes.size(), B.Schedule.Nodes.size());
  for (size_t I = 0; I < A.Schedule.Nodes.size(); ++I) {
    EXPECT_EQ(A.Schedule.Nodes[I].Id, B.Schedule.Nodes[I].Id);
    EXPECT_EQ(A.Schedule.Nodes[I].StartNs, B.Schedule.Nodes[I].StartNs);
  }
}

TEST(SchedulerProperty, OverlapNeverExceedsDeviceSum) {
  // Parallel speedup is bounded by 2x for a two-resource system.
  const Graph Model = buildMnasNet();
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  const double Work = R.Schedule.GpuBusyNs + R.Schedule.PimBusyNs;
  EXPECT_GE(2.0 * R.Schedule.TotalNs + 1e-6, Work);
}

TEST(ZooTest, TryBuildModel) {
  EXPECT_TRUE(tryBuildModel("toy").has_value());
  EXPECT_TRUE(tryBuildModel("densenet-121").has_value());
  EXPECT_TRUE(tryBuildModel("efficientnet-v1-b3").has_value());
  EXPECT_FALSE(tryBuildModel("notanet").has_value());
  EXPECT_FALSE(tryBuildModel("").has_value());
}
