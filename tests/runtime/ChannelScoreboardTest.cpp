//===- tests/runtime/ChannelScoreboardTest.cpp - Breaker tests --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "runtime/ChannelScoreboard.h"

using namespace pf;

namespace {

TEST(ChannelScoreboardTest, TripsAfterConsecutiveFailures) {
  ChannelScoreboard B(4, /*TripThreshold=*/3, /*CooldownNs=*/1000,
                      /*Seed=*/7);
  EXPECT_FALSE(B.recordFailure(0, 100));
  EXPECT_FALSE(B.recordFailure(0, 200));
  EXPECT_FALSE(B.open(0));
  EXPECT_EQ(B.consecutiveFailures(0), 2);

  // The third consecutive failure trips; further failures are absorbed by
  // the already-open breaker.
  EXPECT_TRUE(B.recordFailure(0, 300));
  EXPECT_TRUE(B.open(0));
  EXPECT_EQ(B.tripCount(0), 1);
  EXPECT_EQ(B.trips(), 1);
  EXPECT_FALSE(B.recordFailure(0, 400));
  EXPECT_EQ(B.tripCount(0), 1);

  // Other channels are independent.
  EXPECT_FALSE(B.open(1));
  EXPECT_EQ(B.consecutiveFailures(1), 0);
}

TEST(ChannelScoreboardTest, SuccessResetsAClosedBreakerOnly) {
  ChannelScoreboard B(2, 2, 1000, 1);
  EXPECT_FALSE(B.recordFailure(0, 10));
  B.recordSuccess(0);
  EXPECT_EQ(B.consecutiveFailures(0), 0);

  // Two more failures trip it; a success while open must NOT silently
  // close the breaker — only a probe may.
  EXPECT_FALSE(B.recordFailure(0, 20));
  EXPECT_TRUE(B.recordFailure(0, 30));
  B.recordSuccess(0);
  EXPECT_TRUE(B.open(0));
}

TEST(ChannelScoreboardTest, ProbeClosesOnHealthyAndLogsTheLifecycle) {
  ChannelScoreboard B(2, 1, 1000, 42);
  EXPECT_TRUE(B.recordFailure(0, 50));
  EXPECT_FALSE(B.probe(0, 1100, /*Healthy=*/false));
  EXPECT_TRUE(B.open(0));
  EXPECT_TRUE(B.probe(0, 2200, /*Healthy=*/true));
  EXPECT_FALSE(B.open(0));
  EXPECT_EQ(B.consecutiveFailures(0), 0);
  EXPECT_EQ(B.probes(), 2);
  EXPECT_EQ(B.readmits(), 1);

  // Event log: trip -> unhealthy probe -> healthy probe -> readmit, in
  // virtual-time order.
  const auto &E = B.events();
  ASSERT_EQ(E.size(), 4u);
  EXPECT_EQ(E[0].K, BreakerEvent::Kind::Trip);
  EXPECT_EQ(E[1].K, BreakerEvent::Kind::Probe);
  EXPECT_FALSE(E[1].Ok);
  EXPECT_EQ(E[2].K, BreakerEvent::Kind::Probe);
  EXPECT_TRUE(E[2].Ok);
  EXPECT_EQ(E[3].K, BreakerEvent::Kind::Readmit);
  EXPECT_TRUE(E[3].Ok);
  for (size_t I = 1; I < E.size(); ++I)
    EXPECT_LE(E[I - 1].TimeNs, E[I].TimeNs);
}

TEST(ChannelScoreboardTest, ProbeScheduleIsSeededAndOrderIndependent) {
  ChannelScoreboard A(4, 1, 1000, 9);
  ChannelScoreboard B(4, 1, 1000, 9);
  // Same (seed, channel, attempt) -> same instant, regardless of what
  // happened on other channels in between.
  const int64_t A0 = A.nextProbeNs(2, 5000);
  B.nextProbeNs(1, 777); // unrelated channel consumes nothing shared
  const int64_t B0 = B.nextProbeNs(2, 5000);
  EXPECT_EQ(A0, B0);
  EXPECT_GE(A0, 5000 + 1000);
  EXPECT_LE(A0, 5000 + 1000 + 250); // jitter in [0, Cooldown/4]

  // Attempts advance the schedule deterministically.
  const int64_t A1 = A.nextProbeNs(2, 5000);
  const int64_t B1 = B.nextProbeNs(2, 5000);
  EXPECT_EQ(A1, B1);

  // Different seeds diverge somewhere in the first few attempts.
  ChannelScoreboard C(4, 1, 1000, 10);
  bool Diverged = false;
  ChannelScoreboard A2(4, 1, 1000, 9);
  for (int I = 0; I < 8 && !Diverged; ++I)
    Diverged = A2.nextProbeNs(2, 5000) != C.nextProbeNs(2, 5000);
  EXPECT_TRUE(Diverged);
}

TEST(ChannelScoreboardTest, ZeroThresholdDisablesTripping) {
  ChannelScoreboard B(2, 0, 1000, 1);
  for (int I = 0; I < 64; ++I)
    EXPECT_FALSE(B.recordFailure(1, I));
  EXPECT_FALSE(B.open(1));
  EXPECT_EQ(B.trips(), 0);
}

TEST(ChannelScoreboardTest, RecoveryIsLoggedAsNonProbeReadmit) {
  ChannelScoreboard B(2, 4, 1000, 1);
  B.noteQuarantine(0, 100);
  B.noteRecovery(0, 900);
  EXPECT_EQ(B.recoveries(), 1);
  EXPECT_EQ(B.readmits(), 0);
  const auto &E = B.events();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_EQ(E[0].K, BreakerEvent::Kind::Quarantine);
  EXPECT_EQ(E[1].K, BreakerEvent::Kind::Readmit);
  EXPECT_FALSE(E[1].Ok); // outage-end recovery, not a breaker probe
}

} // namespace
