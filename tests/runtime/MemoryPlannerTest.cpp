//===- tests/runtime/MemoryPlannerTest.cpp - liveness tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/MemoryPlanner.h"

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

MemoryPlan planFor(const Graph &G, const SystemConfig &C) {
  ExecutionEngine E(C);
  const Timeline TL = E.execute(G);
  return planMemory(G, TL, MemoryOptimizer(C.MemoryOptimizer));
}

} // namespace

TEST(MemoryPlannerTest, ChainPeakIsAdjacentPair) {
  // conv chain at fixed shape: at any time at most producer-input +
  // producer-output are live (activations are released after their sole
  // consumer).
  GraphBuilder B("chain");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4}); // 512 B at fp16.
  ValueId A = B.conv2d(X, 4, 3, 1, 1);               // 512 B
  ValueId C = B.conv2d(A, 4, 3, 1, 1);               // 512 B
  B.output(B.conv2d(C, 4, 3, 1, 1));                 // 512 B
  Graph G = B.take();
  MemoryPlan P = planFor(G, SystemConfig::gpuOnly());
  // Peak: one input + one output + (brief) predecessor still resident.
  EXPECT_GE(P.PeakActivationBytes, 2 * 512);
  EXPECT_LE(P.PeakActivationBytes, 3 * 512);
}

TEST(MemoryPlannerTest, ResidualKeepsSkipAlive) {
  // The skip connection holds its buffer across the whole block body.
  GraphBuilder B("res");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  ValueId V = B.relu(B.conv2d(X, 4, 3, 1, 1));
  V = B.conv2d(V, 4, 3, 1, 1);
  B.output(B.add(V, X));
  Graph G = B.take();
  MemoryPlan P = planFor(G, SystemConfig::gpuOnly());
  // x (held for the add) + intermediate + output coexist.
  EXPECT_GE(P.PeakActivationBytes, 3 * 512);
}

TEST(MemoryPlannerTest, WeightsCountedSeparately) {
  GraphBuilder B("w");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  B.output(B.conv2d(X, 8, 3, 1, 1));
  Graph G = B.take();
  MemoryPlan P = planFor(G, SystemConfig::gpuOnly());
  EXPECT_EQ(P.WeightBytes, 3 * 3 * 4 * 8 * 2);
}

TEST(MemoryPlannerTest, FreeViewsAliasStorage) {
  // An H-slice/concat pair allocates nothing with the optimizer on and
  // real buffers with it off.
  GraphBuilder B("views");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  ValueId Lo = B.slice(X, 1, 0, 4);
  ValueId Hi = B.slice(X, 1, 4, 8);
  B.output(B.relu(B.concat({Lo, Hi}, 1)));
  Graph G = B.take();

  SystemConfig On = SystemConfig::gpuOnly();
  SystemConfig Off = SystemConfig::gpuOnly();
  Off.MemoryOptimizer = false;
  MemoryPlan POn = planFor(G, On);
  MemoryPlan POff = planFor(G, Off);
  EXPECT_GT(POn.AliasedBytes, 0);
  EXPECT_LT(POn.PeakActivationBytes, POff.PeakActivationBytes);
}

TEST(MemoryPlannerTest, MdDpSplitDoesNotExplodeMemory) {
  // With the layout optimizer, PIMFlow's split graphs peak within ~25% of
  // the baseline graph (the halves alias the original buffers).
  const Graph Model = buildMobileNetV2();
  CompileResult Base = PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Model);
  CompileResult Flow = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  const MemoryPlan PBase =
      planMemory(Base.Transformed, Base.Schedule, MemoryOptimizer(true));
  const MemoryPlan PFlow =
      planMemory(Flow.Transformed, Flow.Schedule, MemoryOptimizer(true));
  EXPECT_LT(PFlow.PeakActivationBytes,
            1.25 * PBase.PeakActivationBytes);
  EXPECT_GT(PFlow.AliasedBytes, 0);
}

TEST(MemoryPlannerTest, PeakWithinTotalFootprint) {
  const Graph Model = buildToy();
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  MemoryPlan P =
      planMemory(R.Transformed, R.Schedule, MemoryOptimizer(true));
  int64_t Total = 0;
  for (const Value &V : R.Transformed.values())
    if (!V.IsParam)
      Total += V.byteCount();
  EXPECT_GT(P.PeakActivationBytes, 0);
  EXPECT_LE(P.PeakActivationBytes, Total);
  EXPECT_GE(P.PeakAtNs, 0.0);
  EXPECT_LE(P.PeakAtNs, R.Schedule.TotalNs + 1.0);
}
