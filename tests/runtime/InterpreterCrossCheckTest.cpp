//===- tests/runtime/InterpreterCrossCheckTest.cpp - conv oracle -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validates the interpreter's direct convolution against an
/// independently written im2col + GEMM implementation — the same lowering
/// the DRAM-PIM back-end performs (Section 2.2), so this doubles as a
/// check that the lowering's matrix view of convolution is faithful.
///
//===----------------------------------------------------------------------===//

#include <cmath>
#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "runtime/Interpreter.h"
#include "support/Random.h"

using namespace pf;

namespace {

/// Convolution via explicit convolution lowering: build the im2col matrix
/// [Ho*Wo, KH*KW*Cin] and multiply by the filter matrix [KH*KW*Cin, Cout].
/// Groups == 1 only (the PIM-candidate case).
Tensor convViaIm2col(const Tensor &X, const Tensor &W,
                     const Conv2dAttrs &A) {
  const TensorShape &XS = X.shape();
  const int64_t Hi = XS.dim(1), Wi = XS.dim(2), Cin = XS.dim(3);
  const int64_t Cout = W.shape().dim(3);
  const int64_t Ho = (Hi + A.PadTop + A.PadBottom - A.KernelH) / A.StrideH + 1;
  const int64_t Wo = (Wi + A.PadLeft + A.PadRight - A.KernelW) / A.StrideW + 1;
  const int64_t K = A.KernelH * A.KernelW * Cin;

  // im2col: one row per output position.
  std::vector<float> Col(static_cast<size_t>(Ho * Wo * K), 0.0f);
  for (int64_t P = 0; P < Ho * Wo; ++P) {
    const int64_t Oy = P / Wo, Ox = P % Wo;
    for (int64_t Kh = 0; Kh < A.KernelH; ++Kh)
      for (int64_t Kw = 0; Kw < A.KernelW; ++Kw)
        for (int64_t C = 0; C < Cin; ++C) {
          const int64_t Y = Oy * A.StrideH + Kh - A.PadTop;
          const int64_t Xc = Ox * A.StrideW + Kw - A.PadLeft;
          const int64_t Idx =
              P * K + (Kh * A.KernelW + Kw) * Cin + C;
          if (Y >= 0 && Y < Hi && Xc >= 0 && Xc < Wi)
            Col[static_cast<size_t>(Idx)] = X.at4(0, Y, Xc, C);
        }
  }

  // GEMM: [Ho*Wo, K] x [K, Cout]. The weight tensor's layout
  // [KH, KW, Cin, Cout] flattens to exactly the [K, Cout] matrix.
  Tensor Out(TensorShape{1, Ho, Wo, Cout});
  for (int64_t P = 0; P < Ho * Wo; ++P)
    for (int64_t M = 0; M < Cout; ++M) {
      double Acc = 0.0;
      for (int64_t I = 0; I < K; ++I)
        Acc += static_cast<double>(Col[static_cast<size_t>(P * K + I)]) *
               W.at(I * Cout + M);
      Out.at(P * Cout + M) = static_cast<float>(Acc);
    }
  return Out;
}

struct ConvShape {
  int64_t H, Cin, Cout, Kernel, Stride, Pad;
};

} // namespace

class ConvCrossCheck : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvCrossCheck, DirectMatchesIm2colGemm) {
  const ConvShape S = GetParam();
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, S.H, S.H, S.Cin});
  B.output(B.conv2d(X, S.Cout, S.Kernel, S.Stride, S.Pad));
  Graph G = B.take();

  const Tensor In =
      Interpreter::randomInput(TensorShape{1, S.H, S.H, S.Cin}, 17);
  const Tensor Direct = Interpreter(G).run({In}).front();

  // Materialize the same weights the interpreter used.
  ValueId WId = InvalidValue;
  for (const Value &V : G.values())
    if (V.IsParam)
      WId = V.Id;
  const Tensor W = Interpreter::materializeParam(G, WId);

  Conv2dAttrs A;
  A.KernelH = A.KernelW = S.Kernel;
  A.StrideH = A.StrideW = S.Stride;
  A.PadTop = A.PadBottom = A.PadLeft = A.PadRight = S.Pad;
  const Tensor Lowered = convViaIm2col(In, W, A);

  ASSERT_EQ(Direct.shape(), Lowered.shape());
  for (int64_t I = 0; I < Direct.numElements(); ++I)
    // Both implementations accumulate in double over the same operands;
    // the summation order differs, so allow tiny drift.
    ASSERT_NEAR(Direct.at(I), Lowered.at(I),
                1e-4 * (1.0 + std::fabs(Direct.at(I))))
        << "element " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvCrossCheck,
    ::testing::Values(ConvShape{8, 3, 5, 1, 1, 0},   // pointwise
                      ConvShape{8, 3, 5, 3, 1, 1},   // 3x3 same
                      ConvShape{9, 4, 6, 3, 2, 1},   // strided odd
                      ConvShape{7, 2, 4, 5, 1, 2},   // 5x5
                      ConvShape{11, 3, 3, 7, 2, 3},  // 7x7 stride 2
                      ConvShape{6, 8, 8, 3, 3, 0})); // stride 3 no pad
