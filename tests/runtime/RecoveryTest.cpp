//===- tests/runtime/RecoveryTest.cpp - fault recovery tests ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Recovery.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "runtime/Equivalence.h"

using namespace pf;

namespace {

SystemConfig dualConfig() { return SystemConfig::dual(8, true); }

/// Two PIM convs plus a GPU pool — enough structure for remap and
/// per-node fallback to differ.
Graph pimGraph() {
  GraphBuilder B("pim-graph");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 16});
  ValueId A = B.conv2d(X, 32, 1, 1, 0);
  ValueId C = B.conv2d(A, 32, 3, 1, 1);
  B.output(B.maxPool(C, 2, 2));
  Graph G = B.take();
  for (const Node &N : G.nodes())
    if (isPimCandidate(N))
      G.node(N.Id).Dev = Device::Pim;
  return G;
}

int pimNodeCount(const Graph &G, const Timeline &TL) {
  int N = 0;
  for (const NodeSchedule &S : TL.Nodes)
    N += S.Dev == Device::Pim ? 1 : 0;
  (void)G;
  return N;
}

} // namespace

TEST(RecoveryTest, NoFaultsMatchesPlainExecution) {
  Graph G = pimGraph();
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), FaultModel{});
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.Degraded);
  EXPECT_TRUE(R.Notes.empty());
  EXPECT_FALSE(DE.hasErrors());
  const Timeline Plain = ExecutionEngine(dualConfig()).execute(G);
  EXPECT_DOUBLE_EQ(R.Schedule.TotalNs, Plain.TotalNs);
  EXPECT_EQ(R.Schedule.Nodes.size(), Plain.Nodes.size());
}

TEST(RecoveryTest, DeadChannelRemapsAndInflatesMakespan) {
  Graph G = pimGraph();
  FaultModel M;
  M.addDead(0);
  M.addDead(1);
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), M);
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.DeadChannels, 2);
  EXPECT_EQ(R.SurvivingChannels, 6);
  EXPECT_GT(R.NodesRemapped, 0);
  EXPECT_EQ(R.NodesFellBack, 0);
  // Degradation is reported as warnings, never as errors.
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_NE(DE.render().find("fault.dead-channel"), std::string::npos);
  // PIM nodes stayed on PIM, just over fewer channels — and fewer channels
  // can never be faster.
  EXPECT_GT(pimNodeCount(R.Executed, R.Schedule), 0);
  const Timeline Plain = ExecutionEngine(dualConfig()).execute(G);
  EXPECT_GE(R.Schedule.TotalNs, Plain.TotalNs - 1e-9);
}

TEST(RecoveryTest, StalledChannelCountsAsLost) {
  Graph G = pimGraph();
  FaultModel M;
  M.addStalled(3);
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), M);
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.StalledChannels, 1);
  EXPECT_EQ(R.SurvivingChannels, 7);
  EXPECT_NE(DE.render().find("fault.stalled-channel"), std::string::npos);
}

TEST(RecoveryTest, BelowFloorFallsBackToGpu) {
  Graph G = pimGraph();
  FaultModel M;
  for (int Ch = 0; Ch < 6; ++Ch)
    M.addDead(Ch);
  RecoveryOptions RO;
  RO.PimFloor = 4; // 2 survivors < 4.
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), M, RO);
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  EXPECT_GT(R.NodesFellBack, 0);
  EXPECT_EQ(pimNodeCount(R.Executed, R.Schedule), 0);
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_NE(DE.render().find("fault.pim-floor"), std::string::npos);
  // The fallback graph is the same graph, just GPU-annotated.
  EXPECT_EQ(compareGraphOutputs(G, R.Executed, /*Seed=*/42), std::nullopt);
}

TEST(RecoveryTest, AllChannelsDeadStillProducesTimeline) {
  Graph G = pimGraph();
  FaultModel M;
  for (int Ch = 0; Ch < 8; ++Ch)
    M.addDead(Ch);
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), M);
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.SurvivingChannels, 0);
  EXPECT_EQ(pimNodeCount(R.Executed, R.Schedule), 0);
  EXPECT_GT(R.Schedule.TotalNs, 0.0);
}

TEST(RecoveryTest, ExhaustedRetriesDemoteOnlyTheAffectedNode) {
  Graph G = pimGraph();
  FaultModel M;
  // Fails=10 > default MaxRetries=3 on every COMP ordinal 0: both PIM
  // kernels would hit it, so both nodes demote.
  M.addTransient(TransientFault{0, PimCmdKind::Comp, 0, 10});
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), M);
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  EXPECT_GT(R.NodesFellBack, 0);
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_NE(DE.render().find("fault.retries-exhausted"), std::string::npos);
  EXPECT_EQ(compareGraphOutputs(G, R.Executed, /*Seed=*/7), std::nullopt);
}

TEST(RecoveryTest, RecoverableTransientKeepsNodeOnPim) {
  Graph G = pimGraph();
  FaultModel M;
  M.addTransient(TransientFault{0, PimCmdKind::Comp, 0, 2});
  DiagnosticEngine DE;
  RecoveryExecutor Exec(dualConfig(), M);
  RecoveryResult R = Exec.run(G, DE);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.NodesFellBack, 0);
  EXPECT_GT(R.TransientRetries, 0);
  EXPECT_GT(pimNodeCount(R.Executed, R.Schedule), 0);
  // Retries cost time but not correctness.
  const Timeline Plain = ExecutionEngine(dualConfig()).execute(G);
  EXPECT_GE(R.Schedule.TotalNs, Plain.TotalNs - 1e-9);
}

TEST(RecoveryTest, RecoveryIsDeterministic) {
  Graph G = pimGraph();
  const FaultModel M = FaultModel::chaos(123, 8);
  DiagnosticEngine DA, DB;
  RecoveryResult A = RecoveryExecutor(dualConfig(), M).run(G, DA);
  RecoveryResult B = RecoveryExecutor(dualConfig(), M).run(G, DB);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_DOUBLE_EQ(A.Schedule.TotalNs, B.Schedule.TotalNs);
  EXPECT_EQ(A.Notes, B.Notes);
  EXPECT_EQ(A.NodesRemapped, B.NodesRemapped);
  EXPECT_EQ(A.NodesFellBack, B.NodesFellBack);
}

TEST(RecoveryTest, InvalidConfigFailsWithDiagnostics) {
  SystemConfig C = dualConfig();
  C.Pim.Channels = C.TotalChannels + 5;
  DiagnosticEngine DE;
  Graph G = pimGraph();
  RecoveryResult R = RecoveryExecutor(C, FaultModel{}).run(G, DE);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_NE(DE.render().find("config.invalid"), std::string::npos);
}

TEST(ValidateConfigTest, FactoriesAreValid) {
  DiagnosticEngine DE;
  EXPECT_TRUE(validateSystemConfig(SystemConfig::gpuOnly(), DE));
  EXPECT_TRUE(validateSystemConfig(SystemConfig::dual(16, true), DE));
  EXPECT_TRUE(validateSystemConfig(SystemConfig::dual(8, false, 16), DE));
  EXPECT_FALSE(DE.hasErrors());
}

TEST(ValidateConfigTest, RejectsOutOfRangeFields) {
  const auto Rejects = [](void (*Mutate)(SystemConfig &)) {
    SystemConfig C = SystemConfig::dual(16, true);
    Mutate(C);
    DiagnosticEngine DE;
    const bool Valid = validateSystemConfig(C, DE);
    EXPECT_TRUE(DE.hasErrors());
    EXPECT_NE(DE.render().find("config.invalid"), std::string::npos);
    return !Valid;
  };
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.Pim.Channels = 64; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.Pim.Channels = -1; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.TotalChannels = 0; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.CrossChannelGBs = -1.0; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.SyncOverheadNs = -5.0; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.ContentionFactor = -0.1; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.Pim.ClockGhz = 0.0; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.Pim.BanksPerChannel = 0; }));
  EXPECT_TRUE(Rejects([](SystemConfig &C) { C.Pim.NumGlobalBuffers = 0; }));
  EXPECT_TRUE(
      Rejects([](SystemConfig &C) { C.Gpu.MemChannels = 0; }));
}

TEST(ValidateConfigTest, CollectsMultipleErrors) {
  SystemConfig C = SystemConfig::dual(16, true);
  C.CrossChannelGBs = -1.0;
  C.SyncOverheadNs = -1.0;
  DiagnosticEngine DE;
  EXPECT_FALSE(validateSystemConfig(C, DE));
  EXPECT_GE(DE.errorCount(), 2u);
}

TEST(TimelineFindTest, FindReturnsNullForUnscheduledNode) {
  Timeline TL;
  NodeSchedule S;
  S.Id = 3;
  TL.Nodes.push_back(S);
  EXPECT_NE(TL.find(3), nullptr);
  EXPECT_EQ(TL.find(7), nullptr);
  EXPECT_EQ(&TL.scheduleOf(3), TL.find(3));
}
