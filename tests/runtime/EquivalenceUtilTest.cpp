//===- tests/runtime/EquivalenceUtilTest.cpp - diff oracle ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Equivalence.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

namespace {

Graph unary(const char *Name, bool Relu6) {
  GraphBuilder B(Name);
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  B.output(Relu6 ? B.relu6(X) : B.relu(X));
  return B.take();
}

} // namespace

TEST(EquivalenceUtilTest, IdenticalGraphsCompareClean) {
  const Graph A = unary("a", false);
  EXPECT_FALSE(compareGraphOutputs(A, A, 7).has_value());
  // A structural copy compares clean too.
  const Graph B = unary("b", false);
  EXPECT_FALSE(compareGraphOutputs(A, B, 7).has_value());
}

TEST(EquivalenceUtilTest, NumericDifferenceIsReported) {
  // relu vs relu6 differ wherever the input exceeds 6; scale the input
  // into that range with an Add chain? Not needed: randomInput spans
  // negative values, where relu(x)=0 but x+x != 0.
  GraphBuilder B1("id");
  ValueId X1 = B1.input("x", TensorShape{1, 4, 4, 2});
  B1.output(B1.add(X1, X1));
  const Graph DoubleG = B1.take();

  const Graph ReluG = unary("r", false);
  const auto Diff = compareGraphOutputs(ReluG, DoubleG, 7);
  ASSERT_TRUE(Diff.has_value());
  EXPECT_NE(Diff->find("output"), std::string::npos);
}

TEST(EquivalenceUtilTest, ShapeMismatchIsReported) {
  GraphBuilder B1("pool");
  ValueId X1 = B1.input("x", TensorShape{1, 4, 4, 2});
  B1.output(B1.maxPool(X1, 2, 2));
  const Graph Pooled = B1.take();
  const auto Diff = compareGraphOutputs(unary("r", false), Pooled, 7);
  ASSERT_TRUE(Diff.has_value());
}
