//===- tests/runtime/TimelineDumpTest.cpp - Gantt renderer ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TimelineDump.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/GraphPrinter.h"
#include "support/Format.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

/// conv(GPU) feeding conv(PIM) via independent branches of one input.
Graph dualDeviceGraph() {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 32, 32, 16});
  ValueId A = B.conv2d(X, 32, 1, 1, 0);
  ValueId C = B.conv2d(X, 32, 1, 1, 0);
  B.output(B.concat({A, C}, 1));
  Graph G = B.take();
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Kind == OpKind::Conv2d) {
      G.node(Id).Dev = Device::Pim;
      break;
    }
  return G;
}

} // namespace

TEST(TimelineDumpTest, GanttHasBothLanes) {
  Graph G = dualDeviceGraph();
  ExecutionEngine E(SystemConfig::dual());
  Timeline TL = E.execute(G);
  const std::string Gantt = renderGantt(G, TL, 40);
  const auto Lines = split(Gantt, '\n');
  ASSERT_GE(Lines.size(), 3u);
  EXPECT_TRUE(startsWith(Lines[0], "gpu |"));
  EXPECT_TRUE(startsWith(Lines[1], "pim |"));
  // Both devices did real work.
  EXPECT_NE(Lines[0].find('#'), std::string::npos);
  EXPECT_NE(Lines[1].find('#'), std::string::npos);
  // Lanes have the requested width.
  EXPECT_EQ(Lines[0].size(), Lines[1].size());
}

TEST(TimelineDumpTest, EmptyTimeline) {
  Graph G("empty");
  Timeline TL;
  EXPECT_EQ(renderGantt(G, TL), "(empty timeline)\n");
}

TEST(TimelineDumpTest, ScheduleListSortedByStart) {
  Graph G = dualDeviceGraph();
  ExecutionEngine E(SystemConfig::dual());
  Timeline TL = E.execute(G);
  const std::string List = renderScheduleList(G, TL);
  // Every busy node appears; free concat/slice nodes do not.
  EXPECT_NE(List.find("conv2d"), std::string::npos);
  EXPECT_EQ(List.find("concat"), std::string::npos);
  // Start times are non-decreasing down the listing.
  double Prev = -1.0;
  for (const std::string &Line : split(List, '\n')) {
    if (Line.empty())
      continue;
    const double Start = std::atof(Line.c_str() + 1);
    EXPECT_GE(Start, Prev);
    Prev = Start;
  }
}

TEST(TimelineDumpTest, GanttGoldenString) {
  // Hand-built timeline with round numbers: the rendering is exact.
  Graph G("golden");
  Timeline TL;
  NodeSchedule A;
  A.Id = 0;
  A.Dev = Device::Gpu;
  A.StartNs = 0.0;
  A.EndNs = 50.0;
  NodeSchedule B;
  B.Id = 1;
  B.Dev = Device::Pim;
  B.StartNs = 50.0;
  B.EndNs = 100.0;
  TL.Nodes = {A, B};
  TL.TotalNs = 100.0;
  EXPECT_EQ(renderGantt(G, TL, 10), "gpu |######....|\n"
                                    "pim |.....#####|\n"
                                    "    0      0.1 us\n");
}

TEST(TimelineDumpTest, ScheduleListGoldenString) {
  NodeId Pim = InvalidNode;
  Graph G = dualDeviceGraph();
  for (NodeId Id : G.topoOrder())
    if (G.node(Id).Dev == Device::Pim)
      Pim = Id;
  ASSERT_NE(Pim, InvalidNode);

  Timeline TL;
  NodeSchedule S;
  S.Id = Pim;
  S.Dev = Device::Pim;
  S.StartNs = 1500.0;
  S.EndNs = 4000.0;
  TL.Nodes = {S};
  TL.TotalNs = 4000.0;
  const std::string Expected = formatStr(
      "[     1.50 ..      4.00 us] pim %s\n", G.node(Pim).Name.c_str());
  EXPECT_EQ(renderScheduleList(G, TL), Expected);
}

TEST(TimelineDumpTest, DotExportStructure) {
  Graph G = dualDeviceGraph();
  const std::string Dot = printDot(G);
  EXPECT_TRUE(startsWith(Dot, "digraph"));
  EXPECT_NE(Dot.find("lightsalmon"), std::string::npos);   // PIM node.
  EXPECT_NE(Dot.find("->"), std::string::npos);            // Edges.
  EXPECT_NE(Dot.find("[1x32x32x32]"), std::string::npos);  // Shape label.
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
}
