//===- examples/channel_tuning.cpp - HW design-space exploration -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact's "experiment customization" workflow: sweep the GPU/PIM
/// channel division and the pipeline stage count for a model, and report
/// the best hardware/software configuration — a miniature design-space
/// exploration on top of the public API.
///
///   channel_tuning [model]
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace pf;

int main(int Argc, char **Argv) {
  const std::string ModelName = Argc > 1 ? Argv[1] : "mnasnet-1.0";
  Graph Model = buildModel(ModelName);

  const double BaseNs =
      PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Model).endToEndNs();
  std::printf("design-space exploration for %s (GPU baseline %.1f us)\n\n",
              ModelName.c_str(), BaseNs / 1e3);

  struct Best {
    int PimChannels = 0;
    int Stages = 0;
    double Ns = 1e300;
  } Winner;

  Table T;
  T.setHeader({"pim channels", "2 stages", "3 stages", "4 stages"});
  for (int PimChannels : {4, 8, 12, 16, 20, 24}) {
    std::vector<std::string> Row = {formatStr("%d", PimChannels)};
    for (int Stages : {2, 3, 4}) {
      PimFlowOptions O;
      O.PimChannels = PimChannels;
      O.PipelineStages = Stages;
      const double Ns =
          PimFlow(OffloadPolicy::PimFlow, O).compileAndRun(Model)
              .endToEndNs();
      Row.push_back(formatStr("%.3f", Ns / BaseNs));
      if (Ns < Winner.Ns)
        Winner = Best{PimChannels, Stages, Ns};
    }
    T.addRow(Row);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("best configuration: %d PIM channels of 32, %d pipeline "
              "stages -> %.1f us (%.2fx over the GPU baseline)\n",
              Winner.PimChannels, Winner.Stages, Winner.Ns / 1e3,
              BaseNs / Winner.Ns);
  return 0;
}
