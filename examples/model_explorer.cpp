//===- examples/model_explorer.cpp - Inspect a model's plan -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pimflow -m=solve/run` workflow on any zoo model: run the
/// execution-mode and task-size search, report the chosen segments, the
/// device timeline, and the end-to-end result against the GPU baseline.
///
///   model_explorer [model] [policy]
///   model \in {efficientnet-v1-b0, mobilenet-v2, mnasnet-1.0, resnet-50,
///              vgg-16, bert, toy}; policy defaults to PIMFlow.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <map>

#include "core/PimFlow.h"
#include "runtime/TimelineDump.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace pf;

static OffloadPolicy parsePolicy(const char *Name) {
  for (OffloadPolicy P : allPolicies())
    if (std::strcmp(Name, policyName(P)) == 0)
      return P;
  std::fprintf(stderr, "unknown policy '%s', using PIMFlow\n", Name);
  return OffloadPolicy::PimFlow;
}

int main(int Argc, char **Argv) {
  const std::string ModelName = Argc > 1 ? Argv[1] : "mobilenet-v2";
  const OffloadPolicy Policy =
      Argc > 2 ? parsePolicy(Argv[2]) : OffloadPolicy::PimFlow;

  Graph Model = buildModel(ModelName);
  std::printf("model %s: %zu nodes, %zu values\n\n", ModelName.c_str(),
              Model.numNodes(), Model.numValues());

  CompileResult Base = PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Model);
  PimFlow Flow(Policy);
  CompileResult R = Flow.compileAndRun(Model);

  // Segment summary.
  std::map<SegmentMode, int> Counts;
  for (const SegmentPlan &S : R.Plan.Segments)
    ++Counts[S.Mode];
  std::printf("search result (%s):\n", policyName(Policy));
  for (const auto &[Mode, N] : Counts)
    std::printf("  %-9s x%d\n", segmentModeName(Mode), N);

  // Offloaded / parallelized segments in detail.
  Table T;
  T.setHeader({"segment", "mode", "detail", "time (us)"});
  for (const SegmentPlan &S : R.Plan.Segments) {
    if (S.Mode == SegmentMode::GpuNode)
      continue;
    std::string Names;
    for (NodeId Id : S.Nodes) {
      if (!Names.empty())
        Names += '+';
      Names += Model.node(Id).Name;
    }
    std::string Detail;
    if (S.Mode == SegmentMode::MdDp)
      Detail = formatStr("%.0f%% to GPU", S.RatioGpu * 100.0);
    else if (S.Mode == SegmentMode::Pipeline)
      Detail = formatStr("%s, %d stages", pipelinePatternName(S.Pattern),
                         S.Stages);
    T.addRow({Names, segmentModeName(S.Mode), Detail,
              formatStr("%.2f", S.PredictedNs / 1e3)});
  }
  std::printf("\n%s\n", T.render().c_str());

  // Timeline utilization.
  std::printf("end-to-end: %.1f us (GPU baseline %.1f us, %.2fx "
              "speedup)\n",
              R.endToEndNs() / 1e3, Base.endToEndNs() / 1e3,
              Base.endToEndNs() / R.endToEndNs());
  std::printf("device busy: GPU %.1f us (%.0f%%), PIM %.1f us (%.0f%%)\n",
              R.Schedule.GpuBusyNs / 1e3,
              100.0 * R.Schedule.GpuBusyNs / R.endToEndNs(),
              R.Schedule.PimBusyNs / 1e3,
              100.0 * R.Schedule.PimBusyNs / R.endToEndNs());
  std::printf("energy: %.1f uJ (baseline %.1f uJ, %.0f%% saved)\n",
              R.energyJ() * 1e6, Base.energyJ() * 1e6,
              (1.0 - R.energyJ() / Base.energyJ()) * 100.0);
  std::printf("profiling: %zu samples measured, %zu cache hits\n\n",
              Flow.profiler().cacheMisses(), Flow.profiler().cacheHits());
  std::printf("timeline (GPU lane / PIM lane):\n%s",
              renderGantt(R.Transformed, R.Schedule).c_str());
  return 0;
}
