//===- examples/custom_net.cpp - Compile your own network -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the full public API on a hand-built network: construct a graph
/// with GraphBuilder, compile it under PIMFlow, verify with the reference
/// interpreter that the transformed graph computes exactly the original
/// model, and print the transformed program.
///
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdio>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "ir/GraphPrinter.h"
#include "runtime/Interpreter.h"

using namespace pf;

int main() {
  // 1. Build a small detector-style backbone with the builder API.
  GraphBuilder B("custom-net");
  ValueId X = B.input("image", TensorShape{1, 48, 48, 3});
  X = B.relu(B.conv2d(X, 16, 3, 2, 1));          // stem
  ValueId Skip = X;
  X = B.relu6(B.conv2d(X, 48, 1, 1, 0));         // expand (PIM candidate)
  X = B.relu6(B.dwConv(X, 3, 1, 1));             // depthwise (GPU)
  X = B.conv2d(X, 16, 1, 1, 0);                  // project (PIM candidate)
  X = B.add(X, Skip);                            // residual
  X = B.relu(B.conv2d(X, 32, 3, 2, 1));          // downsample
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 100);                            // classifier (PIM)
  B.output(X);
  const Graph Model = B.take();
  std::printf("built %s: %zu nodes\n\n", Model.name().c_str(),
              Model.numNodes());

  // 2. Compile under full PIMFlow.
  PimFlow Flow(OffloadPolicy::PimFlow);
  CompileResult R = Flow.compileAndRun(Model);
  std::printf("transformed program:\n%s\n",
              printGraph(R.Transformed).c_str());

  // 3. Verify functional equivalence with the reference interpreter.
  const Tensor In =
      Interpreter::randomInput(Model.value(Model.graphInputs()[0]).Shape,
                               2026);
  const Tensor Ref = Interpreter(Model).run({In}).front();
  const Tensor Got = Interpreter(R.Transformed).run({In}).front();
  double MaxDiff = 0.0;
  for (int64_t I = 0; I < Ref.numElements(); ++I)
    MaxDiff = std::max(MaxDiff,
                       std::fabs(static_cast<double>(Ref.at(I)) -
                                 static_cast<double>(Got.at(I))));
  std::printf("functional check: max |original - transformed| = %g %s\n\n",
              MaxDiff, MaxDiff == 0.0 ? "(bit-identical)" : "");

  // 4. Report the performance outcome.
  const double BaseNs =
      PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Model).endToEndNs();
  std::printf("end-to-end: %.2f us vs %.2f us on GPU only "
              "(%.2fx speedup)\n",
              R.endToEndNs() / 1e3, BaseNs / 1e3, BaseNs / R.endToEndNs());
  return MaxDiff == 0.0 ? 0 : 1;
}
