//===- examples/quickstart.cpp - PIMFlow in one page ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact's Toy-network walkthrough: build a small CNN, compile and
/// run it under every offloading mechanism, and print per-policy times
/// normalized to the GPU baseline (the Fig. 17 example output), plus the
/// transformed graph under full PIMFlow.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/PimFlow.h"
#include "ir/GraphPrinter.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace pf;

int main() {
  const Graph Model = buildToy();
  std::printf("== PIMFlow quickstart: %s (%zu nodes) ==\n\n",
              Model.name().c_str(), Model.numNodes());

  double BaselineNs = 0.0;
  Table T;
  T.setHeader({"mechanism", "end-to-end (us)", "normalized", "energy (uJ)"});

  CompileResult PimFlowResult;
  for (OffloadPolicy Policy : allPolicies()) {
    PimFlow Flow(Policy);
    CompileResult R = Flow.compileAndRun(Model);
    if (Policy == OffloadPolicy::GpuOnly)
      BaselineNs = R.endToEndNs();
    if (Policy == OffloadPolicy::PimFlow)
      PimFlowResult = R;
    T.addRow({policyName(Policy),
              formatStr("%.2f", R.endToEndNs() / 1e3),
              formatStr("%.3f", R.endToEndNs() / BaselineNs),
              formatStr("%.2f", R.energyJ() * 1e6)});
  }
  std::printf("%s\n", T.render().c_str());

  std::printf("Transformed graph under full PIMFlow:\n%s\n",
              printGraph(PimFlowResult.Transformed).c_str());

  std::printf("Chosen segments:\n");
  for (const SegmentPlan &S : PimFlowResult.Plan.Segments) {
    if (S.Mode == SegmentMode::GpuNode)
      continue; // Only report offloaded/parallelized segments.
    std::printf("  %-9s", segmentModeName(S.Mode));
    for (NodeId Id : S.Nodes)
      std::printf(" %s", PimFlowResult.Transformed.node(Id).Name.c_str());
    if (S.Mode == SegmentMode::MdDp)
      std::printf("  (ratio to GPU: %.0f%%)", S.RatioGpu * 100.0);
    std::printf("  [%.2f us]\n", S.PredictedNs / 1e3);
  }
  return 0;
}
