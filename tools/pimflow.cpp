//===- tools/pimflow.cpp - Artifact-style command-line driver ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level driver mirroring the artifact's `pimflow` script
/// (Appendix A.5's three-step workflow):
///
///   Step 1: profile candidate layers / pipelining subgraphs
///     pimflow -m=profile -t=split    -n=<net>
///     pimflow -m=profile -t=pipeline -n=<net>
///   Step 2: compute the optimal graph from the profiles
///     pimflow -m=solve -n=<net>
///   Step 3: execute the transformed model
///     pimflow -m=run -n=<net> [--gpu_only] [--policy=<mech>]
///
/// Profiling results persist in a metadata log (profile_<net>.tsv in
/// --dir, default '.') so later steps reuse them, exactly as the artifact
/// stores layerwise/pipeline measurements. Hardware knobs:
///   --pim-channels=N  --stages=N  --autotune  --no-memopt
/// Compile-time knobs:
///   --jobs=N  profiling worker threads (default: all hardware threads;
///             --jobs=1 reproduces the serial search bit for bit)
/// Verification knobs:
///   --verify        verify input/loaded graphs and every pass boundary;
///                   diagnostics go to stderr and exit non-zero
///   --differential  cross-run the interpreter on original vs. transformed
///                   graphs at each pass boundary (slow; debugging aid)
///   --max-errors=N  cap collected diagnostics (default 64)
/// Fault-injection knobs (robustness testing):
///   --faults=<spec>   inject PIM channel faults; spec is comma-separated
///                     dead:<ch> | stall:<ch> | slow:<ch>:<mult> |
///                     comp:<ch>:<ord>:<fails> | readres:<ch>:<ord>:<fails>,
///                     or the literal 'chaos' for a seeded random schedule
///   --fault-seed=N    seed for --faults=chaos (default 0)
///   --max-retries=N   retry budget for transient command faults (default 3)
///   --pim-floor=N     minimum surviving PIM channels before whole-graph
///                     GPU fallback (default 1)
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/PimFlow.h"
#include "core/Report.h"
#include "plan/PlanArtifact.h"
#include "runtime/ExecutionEngine.h"
#include "runtime/Recovery.h"
#include "codegen/CommandGenerator.h"
#include "pim/TraceIO.h"
#include "ir/GraphPrinter.h"
#include "ir/GraphSerializer.h"
#include "ir/Verifier.h"
#include "models/Zoo.h"
#include "obs/Anomaly.h"
#include "obs/Attribution.h"
#include "obs/ChromeTrace.h"
#include "obs/Counters.h"
#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/PerfReport.h"
#include "obs/StatsExport.h"
#include "obs/Trace.h"
#include "serve/LoadGen.h"
#include "serve/ServeReport.h"
#include "serve/Server.h"
#include "support/Format.h"
#include "support/Log.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"
#include "support/Table.h"
#include "transform/PatternMatch.h"

using namespace pf;

namespace {

struct CliOptions {
  std::string Mode;            // profile | solve | run | trace | compile
  std::string ProfileTarget;   // split | pipeline
  std::string Net = "toy";
  bool NetSet = false; // a positional or -n= net was given explicitly
  std::string Dir = ".";
  std::string Policy = "PIMFlow";
  std::string GraphFile; // -m=run --graph=<file>: skip search, execute.
  std::string TraceOut;  // --trace-out=<file>: Chrome trace-event JSON.
  std::string JsonStats; // --json-stats=<file>: machine-readable report.
  std::string PerfReport; // --perf-report=<file>: attribution report JSON.
  std::string ReportFile; // `pimflow report <file>`: report to render.
  std::string MetricsOut; // --metrics-out=<file>: Prometheus exposition.
  std::string FlightDump; // --flight-dump=<file>: flight-recorder dump.
  std::string PlanOut;    // compile --plan-out=<file>: plan artifact.
  std::string PlanIn;     // run --plan=<file>: replay a plan, skip search.
  std::vector<std::string> ServeNets; // serve <net>...: the tenant list.
  std::string Requests;   // serve --requests=<spec>: load-generator spec.
  std::string SummaryOut; // serve --summary-out=<file>: golden summary.
  std::string BenchJson;  // serve --bench-json=<file>: pf_perf_diff rows.
  std::string TraceSample; // serve --trace-sample=<all|tail|tail:K>.
  int ReportRequest = -1; // report --request=<id>: one request's segments.
  int MaxInflight = 4;    // serve --max-inflight=N admission bound.
  int MaxQueue = 8;       // serve --max-queue=N wait-line bound.
  int ChannelPool = 0;    // serve --channel-pool=N arbitrated PIM group.
  int DefaultDeadlineUs = 0; // serve --default-deadline-us=N (0 = none).
  int RetryBudget = 256;     // serve --retry-budget=N mid-run retry cap.
  int BreakerThreshold = 2;  // serve --breaker-threshold=K trip point.
  int BreakerCooldownUs = 500; // serve --breaker-cooldown-us=N probe gap.
  int Verbose = 0;
  bool GpuOnly = false;
  bool Stats = false;
  bool Verify = false; // --verify: run the graph verifier on inputs/outputs.
  bool ReportMetrics = false; // report --metrics: metrics section only.
  bool NoRecovery = false; // --no-recovery: faults bypass the ladder.
  PimFlowOptions Flow;

  CliOptions() {
    // The driver defaults to every hardware thread; the library default
    // stays serial so embedders opt in explicitly.
    Flow.SearchJobs = 0;
  }

  bool observed() const {
    return !TraceOut.empty() || !JsonStats.empty() || !PerfReport.empty() ||
           !MetricsOut.empty();
  }
};

void usage() {
  std::fprintf(
      stderr,
      "usage: pimflow -m=<profile|solve|run|trace|compile> "
      "[-t=<split|pipeline>] -n=<net>\n"
      "       pimflow <verb> <net|graph-file>   (subcommand spelling; net "
      "may be a .graph path)\n"
      "       pimflow compile <net> --plan-out=<file> [--plan-cache-dir=<"
      "dir>]\n"
      "       pimflow run <net> --plan=<file>   (replay a compiled plan; "
      "search is skipped)\n"
      "       pimflow report <perf-report.json> [--metrics] "
      "[--request=<id>]   (render a saved report)\n"
      "       pimflow serve <net>... --requests=<spec>   (closed-loop "
      "multi-tenant serving)\n"
      "               serve spec keys: count:N,seed:S,mean-gap-us:G,"
      "batch:B1|B2|...,deadline-us:D\n"
      "               [--max-inflight=N] [--max-queue=N] "
      "[--channel-pool=N] [--summary-out=<file>] [--bench-json=<file>]\n"
      "               [--default-deadline-us=N] [--retry-budget=N] "
      "[--breaker-threshold=K] [--breaker-cooldown-us=N]\n"
      "               [--trace-sample=<all|tail|tail:K>]   (which requests "
      "keep full traces / report segments)\n"
      "               (serve --faults also takes windowed outages: "
      "dead@<t1>..<t2>:<ch> in virtual us)\n"
      "               [--gpu_only] [--policy=<mechanism>] [--dir=<path>]\n"
      "               [--graph=<solved.pimflow.graph>]\n"
      "               [--pim-channels=N] [--stages=N] [--autotune] "
      "[--no-memopt] [--stats]\n"
      "               [--jobs=N]   (profiling threads; default all cores, "
      "1 = serial)\n"
      "               [--verify] [--differential] [--max-errors=N]\n"
      "               [--faults=<spec|chaos>] [--fault-seed=N] "
      "[--max-retries=N] [--pim-floor=N] [--no-recovery]\n"
      "               [--trace-out=<file>] [--json-stats=<file>] "
      "[--perf-report=<file>] [-v|-vv]\n"
      "               [--metrics-out=<file>] [--flight-dump=<file>]\n"
      "nets: efficientnet-v1-b0 mobilenet-v2 mnasnet-1.0 resnet-50 vgg-16 "
      "bert toy\n"
      "mechanisms: Baseline Newton+ Newton++ PIMFlow-md PIMFlow-pl "
      "PIMFlow\n");
}

/// Parses the value of an `--opt=N` argument as a bounded integer.
/// Malformed or out-of-range values become cli.bad-option diagnostics
/// instead of std::atoi's silent 0 (which used to configure 0 PIM channels
/// from `--pim-channels=abc` and run the whole flow on garbage).
bool parseIntOption(const std::string &Arg, const std::string &Val,
                    int64_t Min, int64_t Max, int &Out,
                    DiagnosticEngine &DE) {
  const std::string Name = Arg.substr(0, Arg.find('='));
  const std::optional<int64_t> Parsed = parseInt(Val);
  if (!Parsed) {
    DE.error(DiagCode::BadOption, Name,
             formatStr("expects an integer, got '%s'", Val.c_str()));
    return false;
  }
  if (*Parsed < Min || *Parsed > Max) {
    DE.error(DiagCode::BadOption, Name,
             formatStr("value %lld is outside the legal range [%lld, %lld]",
                       static_cast<long long>(*Parsed),
                       static_cast<long long>(Min),
                       static_cast<long long>(Max)));
    return false;
  }
  Out = static_cast<int>(*Parsed);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &O, DiagnosticEngine &DE) {
  bool Ok = true;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Val = [&Arg]() { return Arg.substr(Arg.find('=') + 1); };
    if (startsWith(Arg, "-m="))
      O.Mode = Val();
    else if (startsWith(Arg, "-t="))
      O.ProfileTarget = Val();
    else if (startsWith(Arg, "-n=")) {
      O.Net = Val();
      O.NetSet = true;
    }
    else if (startsWith(Arg, "--dir="))
      O.Dir = Val();
    else if (startsWith(Arg, "--policy="))
      O.Policy = Val();
    else if (Arg == "--gpu_only")
      O.GpuOnly = true;
    else if (Arg == "--stats")
      O.Stats = true;
    else if (startsWith(Arg, "--graph="))
      O.GraphFile = Val();
    else if (startsWith(Arg, "--trace-out="))
      O.TraceOut = Val();
    else if (startsWith(Arg, "--json-stats="))
      O.JsonStats = Val();
    else if (startsWith(Arg, "--perf-report="))
      O.PerfReport = Val();
    else if (startsWith(Arg, "--metrics-out="))
      O.MetricsOut = Val();
    else if (startsWith(Arg, "--flight-dump="))
      O.FlightDump = Val();
    else if (startsWith(Arg, "--plan-out="))
      O.PlanOut = Val();
    else if (startsWith(Arg, "--plan="))
      O.PlanIn = Val();
    else if (startsWith(Arg, "--plan-cache-dir="))
      O.Flow.PlanCacheDir = Val();
    else if (startsWith(Arg, "--requests="))
      O.Requests = Val();
    else if (startsWith(Arg, "--summary-out="))
      O.SummaryOut = Val();
    else if (startsWith(Arg, "--bench-json="))
      O.BenchJson = Val();
    else if (startsWith(Arg, "--trace-sample="))
      O.TraceSample = Val();
    else if (startsWith(Arg, "--request="))
      Ok &= parseIntOption(Arg, Val(), 0, 1 << 30, O.ReportRequest, DE);
    else if (startsWith(Arg, "--max-inflight="))
      Ok &= parseIntOption(Arg, Val(), 1, 4096, O.MaxInflight, DE);
    else if (startsWith(Arg, "--max-queue="))
      Ok &= parseIntOption(Arg, Val(), 0, 1 << 20, O.MaxQueue, DE);
    else if (startsWith(Arg, "--channel-pool="))
      Ok &= parseIntOption(Arg, Val(), 1, 4096, O.ChannelPool, DE);
    else if (startsWith(Arg, "--default-deadline-us="))
      Ok &= parseIntOption(Arg, Val(), 0, 1'000'000'000,
                           O.DefaultDeadlineUs, DE);
    else if (startsWith(Arg, "--retry-budget="))
      Ok &= parseIntOption(Arg, Val(), 0, 1 << 20, O.RetryBudget, DE);
    else if (startsWith(Arg, "--breaker-threshold="))
      Ok &= parseIntOption(Arg, Val(), 0, 1 << 20, O.BreakerThreshold, DE);
    else if (startsWith(Arg, "--breaker-cooldown-us="))
      Ok &= parseIntOption(Arg, Val(), 1, 1'000'000'000,
                           O.BreakerCooldownUs, DE);
    else if (Arg == "--metrics")
      O.ReportMetrics = true;
    else if (Arg == "--no-recovery")
      O.NoRecovery = true;
    else if (Arg == "-v" || Arg == "--verbose")
      O.Verbose = std::max(O.Verbose, 1);
    else if (Arg == "-vv")
      O.Verbose = 2;
    else if (startsWith(Arg, "--pim-channels="))
      // SystemConfig::dual requires 0 < PimChannels < TotalChannels.
      Ok &= parseIntOption(Arg, Val(), 1, O.Flow.TotalChannels - 1,
                           O.Flow.PimChannels, DE);
    else if (startsWith(Arg, "--stages="))
      Ok &= parseIntOption(Arg, Val(), 2, 64, O.Flow.PipelineStages, DE);
    else if (startsWith(Arg, "--jobs="))
      // 0 = all hardware threads.
      Ok &= parseIntOption(Arg, Val(), 0, 4096, O.Flow.SearchJobs, DE);
    else if (startsWith(Arg, "--max-errors="))
      Ok &= parseIntOption(Arg, Val(), 1, 1 << 20, O.Flow.MaxVerifyErrors,
                           DE);
    else if (startsWith(Arg, "--faults="))
      O.Flow.FaultSpec = Val();
    else if (startsWith(Arg, "--fault-seed=")) {
      const std::optional<int64_t> Seed = parseInt(Val());
      if (!Seed || *Seed < 0) {
        DE.error(DiagCode::BadOption, "--fault-seed",
                 formatStr("expects a non-negative integer, got '%s'",
                           Val().c_str()));
        Ok = false;
      } else {
        O.Flow.FaultSeed = static_cast<uint64_t>(*Seed);
      }
    } else if (startsWith(Arg, "--max-retries="))
      Ok &= parseIntOption(Arg, Val(), 0, 100, O.Flow.MaxRetries, DE);
    else if (startsWith(Arg, "--pim-floor="))
      Ok &= parseIntOption(Arg, Val(), 0, 4096, O.Flow.PimFloor, DE);
    else if (Arg == "--verify") {
      O.Verify = true;
      O.Flow.VerifyPasses = true;
    } else if (Arg == "--differential")
      O.Flow.DifferentialCheck = true;
    else if (Arg == "--autotune")
      O.Flow.AutoTuneRatios = true;
    else if (Arg == "--no-memopt")
      O.Flow.MemoryOptimizer = false;
    else if (O.Mode.empty() && !startsWith(Arg, "-") &&
             (Arg == "profile" || Arg == "solve" || Arg == "run" ||
              Arg == "trace" || Arg == "compile" || Arg == "report" ||
              Arg == "serve"))
      // Subcommand spelling: `pimflow compile toy` == `-m=compile -n=toy`.
      O.Mode = Arg;
    else if (O.Mode == "report" && O.ReportFile.empty() &&
             !startsWith(Arg, "-"))
      O.ReportFile = Arg;
    else if (O.Mode == "serve" && !startsWith(Arg, "-"))
      // serve admits a tenant LIST: every positional is another model.
      O.ServeNets.push_back(Arg);
    else if (!O.Mode.empty() && O.Mode != "report" && !O.NetSet &&
             !startsWith(Arg, "-")) {
      // Positional net: a zoo model name or a serialized graph file.
      O.Net = Arg;
      O.NetSet = true;
    } else {
      DE.error(DiagCode::BadOption, Arg, "unknown argument");
      Ok = false;
    }
  }
  if (O.Mode != "profile" && O.Mode != "solve" && O.Mode != "run" &&
      O.Mode != "trace" && O.Mode != "compile" && O.Mode != "report" &&
      O.Mode != "serve") {
    DE.error(DiagCode::BadOption, "-m",
             "must be profile, solve, run, trace, compile, report or serve");
    Ok = false;
  }
  if (O.Mode == "serve") {
    // -n= spelling still works for a single tenant; with nothing given,
    // serve the default net so smoke runs stay one-liners.
    if (O.ServeNets.empty())
      O.ServeNets.push_back(O.Net);
  } else if (!O.Requests.empty() || !O.SummaryOut.empty() ||
             !O.BenchJson.empty() || !O.TraceSample.empty()) {
    DE.error(DiagCode::BadOption, "--requests",
             "serve-only flags (--requests/--summary-out/--bench-json/"
             "--trace-sample) require the serve verb");
    Ok = false;
  }
  if (O.Mode == "serve" && !O.JsonStats.empty()) {
    // Silently ignored until the flag combinations were made hard errors;
    // serve's machine-readable export is --perf-report.
    DE.error(DiagCode::BadOption, "--json-stats",
             "applies to single runs; serve exports --perf-report instead");
    Ok = false;
  }
  if (O.Mode == "compile" &&
      (!O.TraceOut.empty() || !O.JsonStats.empty() ||
       !O.PerfReport.empty())) {
    DE.error(DiagCode::BadOption, "compile",
             "runs no execution, so --trace-out/--json-stats/--perf-report "
             "have nothing to export (use run, or serve for request "
             "traces)");
    Ok = false;
  }
  if (O.Mode == "report" &&
      (O.observed() || !O.FlightDump.empty())) {
    DE.error(DiagCode::BadOption, "report",
             "renders an existing document; output flags (--trace-out/"
             "--json-stats/--perf-report/--metrics-out/--flight-dump) are "
             "meaningless here");
    Ok = false;
  }
  if (O.ReportRequest >= 0 && O.Mode != "report") {
    DE.error(DiagCode::BadOption, "--request",
             "is only meaningful with report (render one serve request)");
    Ok = false;
  }
  if (O.ReportRequest >= 0 && O.ReportMetrics) {
    DE.error(DiagCode::BadOption, "--request",
             "cannot be combined with --metrics (pick one view)");
    Ok = false;
  }
  if (O.Mode == "compile" && O.PlanOut.empty() &&
      O.Flow.PlanCacheDir.empty()) {
    DE.error(DiagCode::BadOption, "compile",
             "expects --plan-out=<file> and/or --plan-cache-dir=<dir>");
    Ok = false;
  }
  if (!O.PlanIn.empty() && O.Mode != "run") {
    DE.error(DiagCode::BadOption, "--plan",
             "is only meaningful with run (replay a compiled plan)");
    Ok = false;
  }
  if (!O.PlanIn.empty() && !O.GraphFile.empty()) {
    DE.error(DiagCode::BadOption, "--plan",
             "cannot be combined with --graph (a solved graph already "
             "embeds its plan)");
    Ok = false;
  }
  if (O.Mode == "report" && O.ReportFile.empty()) {
    DE.error(DiagCode::BadOption, "report",
             "expects the path of a --perf-report JSON file");
    Ok = false;
  }
  if (O.Mode == "profile" && O.ProfileTarget != "split" &&
      O.ProfileTarget != "pipeline") {
    DE.error(DiagCode::BadOption, "-t", "must be split or pipeline");
    Ok = false;
  }
  return Ok;
}

/// --verify support: runs the graph verifier over \p G and renders every
/// finding to stderr. Returns non-zero when diagnostics were produced so
/// callers can exit instead of computing on a broken graph.
int verifyGraphCli(const Graph &G, const CliOptions &O, const char *What) {
  if (!O.Verify)
    return 0;
  DiagnosticEngine DE(O.Flow.MaxVerifyErrors);
  if (verify(G, DE))
    return 0;
  std::fprintf(stderr, "error: %s '%s' failed verification:\n%s", What,
               G.name().c_str(), DE.render().c_str());
  return 1;
}

OffloadPolicy policyFromName(const std::string &Name) {
  for (OffloadPolicy P : allPolicies())
    if (Name == policyName(P))
      return P;
  std::fprintf(stderr, "warning: unknown policy '%s', using PIMFlow\n",
               Name.c_str());
  return OffloadPolicy::PimFlow;
}

std::string cachePath(const CliOptions &O) {
  // The net may be a graph-file path; flatten separators so the profile
  // log still lands inside --dir.
  std::string Net = O.Net;
  for (char &C : Net)
    if (C == '/' || C == '\\')
      C = '_';
  return O.Dir + "/profile_" + Net + ".tsv";
}

/// Resolves the `-n=` / positional net argument: a model-zoo name, or a
/// path to a serialized graph file (`pimflow compile m.graph`).
std::optional<Graph> resolveModel(const std::string &NameOrPath) {
  if (auto G = tryBuildModel(NameOrPath))
    return G;
  std::string Error;
  if (auto G = loadGraph(NameOrPath, &Error))
    return G;
  std::fprintf(stderr,
               "error: '%s' is neither a zoo model nor a loadable graph "
               "file (%s)\n",
               NameOrPath.c_str(), Error.c_str());
  return std::nullopt;
}

/// Writes --json-stats and --trace-out for a finished compile. Stats go
/// first: rendering the Chrome trace re-plans the offloaded kernels, which
/// bumps codegen counters that would otherwise leak into the stats dump.
int exportObservability(const CliOptions &O, const CompileResult &R) {
  // In-run anomaly watchdog: with telemetry collected, check tail-latency
  // ratios, lane idle gaps and retry rates before anything is exported, so
  // the warnings land next to the run they describe.
  if (obs::MetricsRegistry::instance().enabled() &&
      !R.Schedule.Nodes.empty()) {
    DiagnosticEngine ADE;
    const obs::AttributionReport A =
        obs::attributeTimeline(R.Transformed, R.Schedule, R.Config);
    if (obs::evaluateAnomalies(ADE, &A) > 0)
      std::fprintf(stderr, "%s", ADE.render().c_str());
  }
  if (!O.JsonStats.empty()) {
    if (!obs::writeStatsJson(R, O.JsonStats)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.JsonStats.c_str());
      return 1;
    }
    std::printf("JSON stats written to %s\n", O.JsonStats.c_str());
  }
  if (!O.PerfReport.empty()) {
    if (!obs::writePerfReport(R, O.PerfReport)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.PerfReport.c_str());
      return 1;
    }
    std::printf("perf report written to %s (render with `pimflow report "
                "%s`)\n",
                O.PerfReport.c_str(), O.PerfReport.c_str());
  }
  if (!O.TraceOut.empty()) {
    if (!obs::writeChromeTrace(R, O.TraceOut)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.TraceOut.c_str());
      return 1;
    }
    std::printf("Chrome trace written to %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                O.TraceOut.c_str());
  }
  if (!O.MetricsOut.empty()) {
    if (!obs::writeMetricsText(O.MetricsOut)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.MetricsOut.c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", O.MetricsOut.c_str());
  }
  return 0;
}

/// Prints the degradation summary of a fault-injected run.
void printRecovery(const RecoverySummary &R) {
  if (!R.Active)
    return;
  if (!R.Degraded) {
    std::printf("fault injection: no degradation (all faults absorbed)\n");
    return;
  }
  std::printf("fault injection: degraded run — %d dead, %d stalled, %d "
              "surviving channel(s); %d node(s) remapped, %d fell back, %d "
              "retr%s absorbed\n",
              R.DeadChannels, R.StalledChannels, R.SurvivingChannels,
              R.NodesRemapped, R.NodesFellBack, R.TransientRetries,
              R.TransientRetries == 1 ? "y" : "ies");
  for (const std::string &Note : R.Notes)
    std::printf("  - %s\n", Note.c_str());
}

int runProfile(const CliOptions &O) {
  auto Maybe = resolveModel(O.Net);
  if (!Maybe)
    return 2;
  Graph Model = std::move(*Maybe);
  Profiler P(systemConfigFor(OffloadPolicy::PimFlow, O.Flow));
  P.loadCache(cachePath(O)); // Resume previous profiling if present.

  if (O.ProfileTarget == "split") {
    SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlowMd, O.Flow);
    S.RefineRatios = O.Flow.AutoTuneRatios;
    SearchEngine Engine(P, S);
    ExecutionPlan Plan = Engine.search(Model);
    std::printf("profiled %zu PIM-candidate layers at %s ratio "
                "granularity\n",
                Plan.Layers.size(), O.Flow.AutoTuneRatios ? "2%" : "10%");
  } else {
    const std::vector<PipelineCandidate> Cands =
        findPipelineCandidates(Model);
    ThreadPool Pool(O.Flow.SearchJobs < 0
                        ? 0
                        : static_cast<unsigned>(O.Flow.SearchJobs));
    Pool.parallelFor(Cands.size(), [&](size_t I) {
      P.pipelineNs(Model, Cands[I].Chain, O.Flow.PipelineStages);
    });
    std::printf("profiled %zu pipelining candidate subgraphs (%d stages)\n",
                Cands.size(), O.Flow.PipelineStages);
  }
  std::printf("measurements: %zu new, %zu from cache\n", P.cacheMisses(),
              P.cacheHits());
  if (!P.saveCache(cachePath(O))) {
    std::fprintf(stderr, "error: cannot write %s\n", cachePath(O).c_str());
    return 1;
  }
  std::printf("profile log written to %s\n", cachePath(O).c_str());
  if (!O.TraceOut.empty()) {
    // No execution timeline in profile mode: export the compile spans only.
    if (!obs::writeTextFile(
            O.TraceOut,
            obs::renderCompileTrace(obs::Tracer::instance().snapshot()))) {
      std::fprintf(stderr, "error: cannot write %s\n", O.TraceOut.c_str());
      return 1;
    }
    std::printf("Chrome trace written to %s\n", O.TraceOut.c_str());
  }
  return 0;
}

int runSolve(const CliOptions &O) {
  auto Maybe = resolveModel(O.Net);
  if (!Maybe)
    return 2;
  Graph Model = std::move(*Maybe);
  if (const int Rc = verifyGraphCli(Model, O, "model"))
    return Rc;
  PimFlow Flow(policyFromName(O.Policy), O.Flow);
  Flow.profiler().loadCache(cachePath(O));
  CompileResult R = Flow.compileAndRun(Model);

  std::printf("optimal execution plan for %s (%s):\n", O.Net.c_str(),
              policyName(R.Policy));
  Table T;
  T.setHeader({"mode", "nodes", "detail", "time (us)"});
  for (const SegmentPlan &S : R.Plan.Segments) {
    if (S.Mode == SegmentMode::GpuNode)
      continue;
    std::string Names;
    for (NodeId Id : S.Nodes) {
      if (!Names.empty())
        Names += '+';
      Names += Model.node(Id).Name;
    }
    std::string Detail;
    if (S.Mode == SegmentMode::MdDp)
      Detail = formatStr("%.0f%% GPU", S.RatioGpu * 100.0);
    else if (S.Mode == SegmentMode::Pipeline)
      Detail = pipelinePatternName(S.Pattern);
    T.addRow({segmentModeName(S.Mode), Names, Detail,
              formatStr("%.2f", S.PredictedNs / 1e3)});
  }
  std::printf("%s", T.render().c_str());

  const std::string GraphPath = O.Dir + "/" + O.Net + ".pimflow.graph";
  if (saveGraph(R.Transformed, GraphPath))
    std::printf("\ntransformed graph written to %s (reload with "
                "pf::loadGraph)\n",
                GraphPath.c_str());
  Flow.profiler().saveCache(cachePath(O));
  return exportObservability(O, R);
}

/// Step 3 shortcut: execute an already-solved transformed graph (the
/// artifact's "jump to Step 3 if you have already computed the optimal
/// graph").
int runExecuteGraphFile(const CliOptions &O) {
  std::string Error;
  auto Loaded = loadGraph(O.GraphFile, &Error);
  if (!Loaded) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  // Graph files are hand-editable: verify before executing when asked.
  if (const int Rc = verifyGraphCli(*Loaded, O, "graph file"))
    return Rc;
  const SystemConfig Config =
      systemConfigFor(O.GpuOnly ? OffloadPolicy::GpuOnly
                                : policyFromName(O.Policy),
                      O.Flow);
  // No search ran: assemble the result the printers/exporters need by hand.
  CompileResult R;
  R.Policy = O.GpuOnly ? OffloadPolicy::GpuOnly : policyFromName(O.Policy);
  R.Config = Config;
  R.Transformed = std::move(*Loaded);
  if (O.Flow.FaultSpec.empty()) {
    ExecutionEngine Engine(Config);
    R.Schedule = Engine.execute(R.Transformed);
  } else {
    DiagnosticEngine DE;
    FaultModel Faults;
    if (O.Flow.FaultSpec == "chaos") {
      Faults = FaultModel::chaos(O.Flow.FaultSeed, Config.Pim.Channels);
    } else if (auto Parsed = FaultModel::parse(O.Flow.FaultSpec, DE)) {
      Faults = *std::move(Parsed);
    } else {
      std::fprintf(stderr, "error: bad --faults spec:\n%s",
                   DE.render().c_str());
      return 2;
    }
    if (O.NoRecovery) {
      // Drive the engine directly against the fault schedule, bypassing
      // the retry -> remap -> floor ladder: any persistent fault reaches
      // tryExecute and fails the run with fault.unrecovered — the
      // deterministic trigger for the flight recorder's auto-dump
      // (ci.sh tier 6 relies on this).
      RetryPolicy Retry;
      Retry.MaxRetries = O.Flow.MaxRetries;
      ExecutionEngine Engine(Config);
      auto TL = Engine.tryExecute(R.Transformed, DE, &Faults, &Retry);
      if (!TL) {
        std::fprintf(stderr, "error: execution failed under "
                             "--no-recovery:\n%s",
                     DE.render().c_str());
        return 1;
      }
      R.Schedule = std::move(*TL);
    } else {
      RecoveryOptions RO;
      RO.Retry.MaxRetries = O.Flow.MaxRetries;
      RO.PimFloor = O.Flow.PimFloor;
      RecoveryExecutor Exec(Config, Faults, RO);
      RecoveryResult RR = Exec.run(R.Transformed, DE);
      if (!RR.Ok) {
        std::fprintf(stderr, "error: fault recovery failed:\n%s",
                     DE.render().c_str());
        return 1;
      }
      R.Transformed = std::move(RR.Executed);
      R.Schedule = std::move(RR.Schedule);
      R.Recovery.Active = true;
      R.Recovery.Degraded = RR.Degraded;
      R.Recovery.DeadChannels = RR.DeadChannels;
      R.Recovery.StalledChannels = RR.StalledChannels;
      R.Recovery.SurvivingChannels = RR.SurvivingChannels;
      R.Recovery.NodesRemapped = RR.NodesRemapped;
      R.Recovery.NodesFellBack = RR.NodesFellBack;
      R.Recovery.TransientRetries = RR.TransientRetries;
      R.Recovery.Notes = std::move(RR.Notes);
    }
  }
  std::printf("%s (%zu nodes): %.2f us end-to-end, %.2f uJ\n",
              R.Transformed.name().c_str(), R.Transformed.numNodes(),
              R.Schedule.TotalNs / 1e3, R.Schedule.EnergyJ * 1e6);
  std::printf("device busy: GPU %.1f us, PIM %.1f us\n",
              R.Schedule.GpuBusyNs / 1e3, R.Schedule.PimBusyNs / 1e3);
  printRecovery(R.Recovery);
  if (O.observed())
    return exportObservability(O, R);
  return 0;
}

/// `pimflow compile <net> --plan-out=<file>`: run the search, serialize
/// the plan artifact, and stop — no transform and no execution. With
/// --plan-cache-dir the result is also (or only) stored content-addressed.
int runCompile(const CliOptions &O) {
  auto Maybe = resolveModel(O.Net);
  if (!Maybe)
    return 2;
  Graph Model = std::move(*Maybe);
  if (const int Rc = verifyGraphCli(Model, O, "model"))
    return Rc;
  const OffloadPolicy Policy =
      O.GpuOnly ? OffloadPolicy::GpuOnly : policyFromName(O.Policy);
  PimFlow Flow(Policy, O.Flow);
  Flow.profiler().loadCache(cachePath(O));
  const ExecutionPlan Plan = Flow.plan(Model);
  const PlanKey Key = Flow.planKey(Model);
  std::printf("compiled %s under %s: %zu segments, %.2f us predicted\n",
              O.Net.c_str(), policyName(Policy), Plan.Segments.size(),
              Plan.PredictedNs / 1e3);
  std::printf("plan key: %s\n", Key.digest().c_str());
  if (!O.PlanOut.empty()) {
    if (!savePlanArtifact({Key, Plan}, O.PlanOut)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.PlanOut.c_str());
      return 1;
    }
    std::printf("plan artifact written to %s (replay with `pimflow run %s "
                "--plan=%s`)\n",
                O.PlanOut.c_str(), O.Net.c_str(), O.PlanOut.c_str());
  }
  if (PlanCache *Cache = Flow.planCache())
    std::printf("plan cache %s: %zu hit(s), %zu miss(es), %zu store(s)\n",
                Cache->dir().c_str(), Cache->hits(), Cache->misses(),
                Cache->stores());
  Flow.profiler().saveCache(cachePath(O));
  if (!O.MetricsOut.empty()) {
    if (!obs::writeMetricsText(O.MetricsOut)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.MetricsOut.c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", O.MetricsOut.c_str());
  }
  return 0;
}

/// `pimflow run <net> --plan=<file>`: replay a compiled plan artifact —
/// validate its key against the live (model, config, options) and execute
/// without running the search or touching the profiler. A key mismatch is
/// a hard error: silently re-searching would hide that the artifact no
/// longer describes this compile.
int runReplay(const CliOptions &O) {
  auto Maybe = resolveModel(O.Net);
  if (!Maybe)
    return 2;
  Graph Model = std::move(*Maybe);
  if (const int Rc = verifyGraphCli(Model, O, "model"))
    return Rc;
  const OffloadPolicy Policy =
      O.GpuOnly ? OffloadPolicy::GpuOnly : policyFromName(O.Policy);
  PimFlow Flow(Policy, O.Flow);

  DiagnosticEngine DE;
  auto Artifact = loadPlanArtifact(O.PlanIn, DE);
  if (!Artifact) {
    std::fprintf(stderr, "error: cannot replay %s:\n%s", O.PlanIn.c_str(),
                 DE.render().c_str());
    return 1;
  }
  if (!validatePlanKey(Artifact->Key, Flow.planKey(Model), DE)) {
    std::fprintf(stderr,
                 "error: plan %s does not match this compile:\n%s",
                 O.PlanIn.c_str(), DE.render().c_str());
    return 1;
  }
  obs::addCounter("plan.replays");
  CompileResult R = Flow.executePlan(Model, std::move(Artifact->Plan));

  std::printf("%s on %s: %.2f us end-to-end, %.2f uJ\n",
              policyName(Policy), O.Net.c_str(), R.endToEndNs() / 1e3,
              R.energyJ() * 1e6);
  std::printf("replayed plan %s (search skipped)\n", O.PlanIn.c_str());
  printRecovery(R.Recovery);
  if (O.Stats)
    std::printf("\n%s", renderReport(R).c_str());
  return exportObservability(O, R);
}

int runExecute(const CliOptions &O) {
  if (!O.PlanIn.empty())
    return runReplay(O);
  if (!O.GraphFile.empty())
    return runExecuteGraphFile(O);
  auto Maybe = resolveModel(O.Net);
  if (!Maybe)
    return 2;
  Graph Model = std::move(*Maybe);
  if (const int Rc = verifyGraphCli(Model, O, "model"))
    return Rc;
  const OffloadPolicy Policy =
      O.GpuOnly ? OffloadPolicy::GpuOnly : policyFromName(O.Policy);
  PimFlow Flow(Policy, O.Flow);
  Flow.profiler().loadCache(cachePath(O));
  CompileResult R = Flow.compileAndRun(Model);

  std::printf("%s on %s: %.2f us end-to-end, %.2f uJ\n",
              policyName(Policy), O.Net.c_str(), R.endToEndNs() / 1e3,
              R.energyJ() * 1e6);
  printRecovery(R.Recovery);
  if (O.Stats)
    std::printf("\n%s", renderReport(R).c_str());
  // Export before the baseline comparison below: its second compileAndRun
  // would append spans and counters that belong to the baseline, not to the
  // run being reported.
  if (const int Rc = exportObservability(O, R))
    return Rc;
  if (!O.GpuOnly) {
    PimFlow Base(OffloadPolicy::GpuOnly, O.Flow);
    CompileResult BR = Base.compileAndRun(Model);
    std::printf("GPU baseline: %.2f us -> %.2fx speedup\n",
                BR.endToEndNs() / 1e3, BR.endToEndNs() / R.endToEndNs());
  }
  Flow.profiler().saveCache(cachePath(O));
  return 0;
}

/// Dumps the PIM command trace of every offloaded kernel of the solved
/// graph — the artifact's generated DRAM-PIM simulator inputs.
int runTrace(const CliOptions &O) {
  auto Maybe = resolveModel(O.Net);
  if (!Maybe)
    return 2;
  Graph Model = std::move(*Maybe);
  if (const int Rc = verifyGraphCli(Model, O, "model"))
    return Rc;
  PimFlow Flow(policyFromName(O.Policy), O.Flow);
  Flow.profiler().loadCache(cachePath(O));
  CompileResult R = Flow.compileAndRun(Model);

  PimCommandGenerator Gen(R.Config.Pim, R.Config.Codegen);
  int Dumped = 0;
  for (const NodeSchedule &S : R.Schedule.Nodes) {
    if (S.Dev != Device::Pim)
      continue;
    const Node &N = R.Transformed.node(S.Id);
    const PimKernelPlan Plan = Gen.plan(lowerToPimSpec(R.Transformed, S.Id));
    const std::string Path =
        formatStr("%s/%s.%s.trace", O.Dir.c_str(), O.Net.c_str(),
                  N.Name.c_str());
    if (!saveTrace(Plan.Trace, Path)) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return 1;
    }
    std::printf("%-28s %-14s %8.2f us -> %s\n", N.Name.c_str(),
                Plan.describeMapping().c_str(), Plan.Ns / 1e3,
                Path.c_str());
    ++Dumped;
  }
  std::printf("%d PIM kernel trace(s) written\n", Dumped);
  return exportObservability(O, R);
}

/// `pimflow report <file>`: renders a saved --perf-report document as
/// human-readable text.
int runReport(const CliOptions &O) {
  const auto Text = obs::readTextFile(O.ReportFile);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", O.ReportFile.c_str());
    return 1;
  }
  std::string Error;
  const auto Doc = obs::JsonValue::parse(*Text, &Error);
  if (!Doc) {
    std::fprintf(stderr, "error: %s does not parse as JSON: %s\n",
                 O.ReportFile.c_str(), Error.c_str());
    return 1;
  }
  if (O.ReportRequest >= 0) {
    std::string RequestError;
    const std::string Text =
        serve::renderServeRequestText(*Doc, O.ReportRequest, &RequestError);
    if (Text.empty()) {
      std::fprintf(stderr, "error: %s: %s\n", O.ReportFile.c_str(),
                   RequestError.c_str());
      return 1;
    }
    std::printf("%s", Text.c_str());
    return 0;
  }
  if (O.ReportMetrics) {
    const std::string Text = obs::renderPerfReportMetricsText(*Doc);
    if (Text.empty()) {
      std::fprintf(stderr,
                   "error: %s has no metrics section (schema v1 report?)\n",
                   O.ReportFile.c_str());
      return 1;
    }
    std::printf("%s", Text.c_str());
    return 0;
  }
  std::printf("%s", obs::renderPerfReportText(*Doc).c_str());
  return 0;
}

/// `pimflow serve <net>... --requests=<spec>`: the closed-loop
/// multi-tenant serving mode (docs/INTERNALS.md section 13). Compiles
/// (or replays from --plan-cache-dir) every tenant's plan, then admits
/// the deterministic request stream against the shared PIM channel
/// group. The summary is byte-identical for every --jobs=N.
int runServe(const CliOptions &O) {
  DiagnosticEngine DE(O.Flow.MaxVerifyErrors);
  serve::LoadSpec Spec;
  if (!serve::LoadSpec::parse(O.Requests, Spec, DE)) {
    std::fprintf(stderr, "%s", DE.render().c_str());
    return 2;
  }

  std::vector<std::pair<std::string, Graph>> Models;
  for (const std::string &Net : O.ServeNets) {
    auto Maybe = resolveModel(Net);
    if (!Maybe)
      return 1;
    if (int Rc = verifyGraphCli(*Maybe, O, "serve model"))
      return Rc;
    Models.emplace_back(Net, std::move(*Maybe));
  }

  serve::ServerOptions SO;
  SO.Policy = O.GpuOnly ? OffloadPolicy::GpuOnly : policyFromName(O.Policy);
  SO.Flow = O.Flow;
  SO.MaxInflight = O.MaxInflight;
  SO.MaxQueue = O.MaxQueue;
  SO.PoolChannels = O.ChannelPool;
  SO.DefaultDeadlineUs = O.DefaultDeadlineUs;
  SO.RetryBudget = O.RetryBudget;
  SO.BreakerThreshold = O.BreakerThreshold;
  SO.BreakerCooldownUs = O.BreakerCooldownUs;
  if (!O.TraceSample.empty() &&
      !serve::TraceSamplePolicy::parse(O.TraceSample, SO.Sample, DE)) {
    std::fprintf(stderr, "%s", DE.render().c_str());
    return 2;
  }
  if (!O.Flow.FaultSpec.empty()) {
    const int Pool = O.ChannelPool > 0 ? O.ChannelPool : O.Flow.PimChannels;
    if (O.Flow.FaultSpec == "chaos") {
      // Deterministic horizon from the spec alone: twice the expected
      // span of the arrival stream, so the timeline scales with the load
      // but never depends on the run.
      const int64_t HorizonNs = static_cast<int64_t>(
          std::max(1, Spec.Count) * std::max(1.0, Spec.MeanGapUs) * 2.0 *
          1e3);
      SO.Faults =
          FaultModel::chaosTimeline(O.Flow.FaultSeed, Pool, HorizonNs);
    } else if (auto Parsed = FaultModel::parse(O.Flow.FaultSpec, DE)) {
      SO.Faults = *std::move(Parsed);
    } else {
      std::fprintf(stderr, "error: bad --faults spec:\n%s",
                   DE.render().c_str());
      return 2;
    }
  }
  // --jobs=0 (the driver default) means every hardware thread, matching
  // the search's convention; outcomes are jobs-independent either way.
  SO.Jobs = O.Flow.SearchJobs != 0
                ? O.Flow.SearchJobs
                : static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency()));

  serve::Server Srv(std::move(Models), SO);
  const serve::ServeResult R = Srv.run(Spec, &DE);
  if (!DE.diagnostics().empty())
    std::fprintf(stderr, "%s", DE.render().c_str());

  const std::string Summary = serve::renderServeSummary(R);
  std::printf("%s", Summary.c_str());
  if (!O.SummaryOut.empty()) {
    if (!obs::writeTextFile(O.SummaryOut, Summary)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.SummaryOut.c_str());
      return 1;
    }
    std::printf("serve summary written to %s\n", O.SummaryOut.c_str());
  }
  if (!O.BenchJson.empty()) {
    if (!obs::writeTextFile(O.BenchJson, serve::renderServeBenchJson(R))) {
      std::fprintf(stderr, "error: cannot write %s\n", O.BenchJson.c_str());
      return 1;
    }
    std::printf("serve bench rows written to %s\n", O.BenchJson.c_str());
  }
  if (!O.PerfReport.empty()) {
    if (!serve::writeServeReport(R, O.PerfReport)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.PerfReport.c_str());
      return 1;
    }
    std::printf("serve report written to %s\n", O.PerfReport.c_str());
  }
  if (!O.TraceOut.empty()) {
    // The serve sibling of the run modes' Chrome trace: request lanes,
    // channel lanes, and the sampled per-attempt span trees. Used to be
    // silently ignored in serve mode.
    if (!Srv.writeTrace(R, O.TraceOut)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.TraceOut.c_str());
      return 1;
    }
    std::printf("serve request trace written to %s (%zu of %zu requests "
                "sampled under --trace-sample=%s)\n",
                O.TraceOut.c_str(), R.SampledRequests.size(),
                R.Sessions.size(), R.SamplePolicy.c_str());
  }
  if (!O.MetricsOut.empty()) {
    if (!obs::writeMetricsText(O.MetricsOut)) {
      std::fprintf(stderr, "error: cannot write %s\n", O.MetricsOut.c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", O.MetricsOut.c_str());
  }
  return DE.hasErrors() ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  DiagnosticEngine DE;
  if (!parseArgs(Argc, Argv, O, DE)) {
    std::fprintf(stderr, "%s", DE.render().c_str());
    usage();
    return 2;
  }
  setLogLevel(O.Verbose >= 2   ? LogLevel::Debug
              : O.Verbose == 1 ? LogLevel::Info
                               : LogLevel::Silent);
  // serve always observes: its serve.* counter/histogram families back
  // the summary's exports and the tier-8 metrics gate.
  if (O.observed() || O.Mode == "serve")
    obs::setObservabilityEnabled(true);
  // Arm the auto-dump path before any work runs so a failing tryExecute or
  // unrecovered fault writes its trace even though the process is about to
  // exit non-zero — the crash-safe part of the flight recorder.
  if (!O.FlightDump.empty())
    obs::FlightRecorder::instance().setAutoDumpPath(O.FlightDump);
  int Rc;
  if (O.Mode == "report")
    Rc = runReport(O);
  else if (O.Mode == "profile")
    Rc = runProfile(O);
  else if (O.Mode == "solve")
    Rc = runSolve(O);
  else if (O.Mode == "trace")
    Rc = runTrace(O);
  else if (O.Mode == "compile")
    Rc = runCompile(O);
  else if (O.Mode == "serve")
    Rc = runServe(O);
  else
    Rc = runExecute(O);
  // The exit-time dump overwrites any mid-run auto-dump with the most
  // recent window of events — the one containing whatever went wrong.
  if (!O.FlightDump.empty() && O.Mode != "report") {
    if (!obs::FlightRecorder::instance().dump(
            O.FlightDump, Rc == 0 ? "cli: run complete" : "cli: run failed"))
      std::fprintf(stderr, "error: cannot write %s\n", O.FlightDump.c_str());
    else
      std::printf("flight recorder dump written to %s\n",
                  O.FlightDump.c_str());
  }
  return Rc;
}
