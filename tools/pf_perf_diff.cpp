//===- tools/pf_perf_diff.cpp - Perf-report regression gate -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares a current performance document against a committed baseline
/// and exits nonzero when any gated metric regressed past the relative
/// threshold — the CI tier-5 gate:
///
///   pf_perf_diff [--threshold=0.25] [--abs-epsilon=1e-9]
///       <baseline.json> <current.json>
///
/// The gate regresses a metric when
///   Cur - Base > threshold * max(|Base|, abs-epsilon),
/// so a zero or near-zero baseline still gates (0 -> nonzero fails)
/// instead of hiding behind a divide-by-zero blind spot.
///
/// Both `pimflow --perf-report` documents and bench `PIMFLOW_BENCH_JSON`
/// results dumps are understood (detected by the latter's "results"
/// array); see obs::perfDiff for the gated metric sets. Exit codes:
/// 0 = no regression, 1 = regression, 2 = usage or unreadable input.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/Json.h"
#include "obs/PerfReport.h"

using namespace pf;

namespace {

int usage() {
  std::fprintf(stderr, "usage: pf_perf_diff [--threshold=<rel>] "
                       "[--abs-epsilon=<abs>] <baseline.json> "
                       "<current.json>\n");
  return 2;
}

std::optional<obs::JsonValue> load(const char *Path) {
  const auto Text = obs::readTextFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return std::nullopt;
  }
  std::string Error;
  auto Doc = obs::JsonValue::parse(*Text, &Error);
  if (!Doc)
    std::fprintf(stderr, "error: %s: %s\n", Path, Error.c_str());
  return Doc;
}

} // namespace

int main(int Argc, char **Argv) {
  obs::PerfDiffOptions Options;
  const char *BasePath = nullptr, *CurPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--threshold=", 12) == 0) {
      char *End = nullptr;
      Options.RelThreshold = std::strtod(Arg + 12, &End);
      if (!End || *End != '\0' || Options.RelThreshold < 0.0) {
        std::fprintf(stderr,
                     "error: --threshold expects a non-negative number\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--abs-epsilon=", 14) == 0) {
      char *End = nullptr;
      Options.AbsEpsilon = std::strtod(Arg + 14, &End);
      if (!End || *End != '\0' || Options.AbsEpsilon < 0.0) {
        std::fprintf(stderr,
                     "error: --abs-epsilon expects a non-negative number\n");
        return 2;
      }
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg);
      return usage();
    } else if (!BasePath) {
      BasePath = Arg;
    } else if (!CurPath) {
      CurPath = Arg;
    } else {
      return usage();
    }
  }
  if (!BasePath || !CurPath)
    return usage();

  const auto Base = load(BasePath);
  if (!Base)
    return 2;
  const auto Cur = load(CurPath);
  if (!Cur)
    return 2;

  const obs::PerfDiffResult R = obs::perfDiff(*Base, *Cur, Options);
  if (R.Deltas.empty() && R.Notes.empty()) {
    std::fprintf(stderr,
                 "error: no gated metrics found in %s (neither a perf "
                 "report nor a bench results dump?)\n",
                 BasePath);
    return 2;
  }
  std::printf("%s vs %s (threshold %.0f%%):\n%s", CurPath, BasePath,
              100.0 * Options.RelThreshold,
              obs::renderPerfDiff(R).c_str());
  return R.HasRegression ? 1 : 0;
}
