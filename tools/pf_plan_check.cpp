//===- tools/pf_plan_check.cpp - Plan artifact validator --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates a serialized plan artifact written by `pimflow compile
/// --plan-out=<path>`, for CTest golden tests and ci.sh tier 7 (the plan
/// sibling of pf_metrics_check):
///
///   pf_plan_check [--digest=<hex>] <artifact.plan>
///
/// Checks:
///   - the artifact parses: magic, version, byte count, checksum, and
///     every record (the full corruption surface of the format);
///   - re-serializing the parsed artifact reproduces the file byte for
///     byte (the round-trip invariant the test suite relies on);
///   - the plan is internally coherent: at least one segment, PredictedNs
///     equal to the sum of segment times (within float tolerance), every
///     decision carrying at least one candidate, and every segment node
///     covered by exactly one decision.
///
/// `--digest=<hex>` additionally requires the artifact's content address
/// (PlanKey::digest) to match — how ctest pins a golden fixture to the
/// plan it was generated from. Exit codes: 0 = valid, 1 = invalid,
/// 2 = usage/io error.
///
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>

#include "plan/PlanArtifact.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pf_plan_check [--digest=<hex>] <artifact.plan>\n");
  return 2;
}

bool fail(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::fprintf(stderr, "pf_plan_check: ");
  std::vfprintf(stderr, Fmt, Args);
  std::fprintf(stderr, "\n");
  va_end(Args);
  return false;
}

/// The coherence checks beyond "it parses": the properties every plan the
/// search engine emits hold, so an artifact violating one was corrupted
/// in a way that kept the checksum intact (i.e. regenerated dishonestly).
bool checkCoherent(const PlanArtifact &A) {
  const ExecutionPlan &P = A.Plan;
  if (P.Segments.empty())
    return fail("plan has no segments");
  double SumNs = 0.0;
  for (const SegmentPlan &S : P.Segments) {
    if (S.Nodes.empty())
      return fail("segment with no nodes");
    SumNs += S.PredictedNs;
  }
  const double Tol = 1e-6 * std::max(1.0, std::fabs(P.PredictedNs));
  if (std::fabs(SumNs - P.PredictedNs) > Tol)
    return fail("predicted %.17g ns disagrees with segment sum %.17g ns",
                P.PredictedNs, SumNs);
  std::map<NodeId, int> DecisionCount;
  for (const SearchDecision &D : P.Decisions) {
    if (D.Candidates.empty())
      return fail("decision for node %d has no candidates",
                  static_cast<int>(D.Id));
    ++DecisionCount[D.Id];
  }
  for (const SegmentPlan &S : P.Segments)
    for (NodeId Id : S.Nodes) {
      auto It = DecisionCount.find(Id);
      if (It == DecisionCount.end())
        return fail("segment node %d has no decision record",
                    static_cast<int>(Id));
      if (It->second != 1)
        return fail("segment node %d has %d decision records",
                    static_cast<int>(Id), It->second);
    }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path, WantDigest;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (startsWith(Arg, "--digest="))
      WantDigest = Arg.substr(Arg.find('=') + 1);
    else if (startsWith(Arg, "-"))
      return usage();
    else if (Path.empty())
      Path = Arg;
    else
      return usage();
  }
  if (Path.empty())
    return usage();

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "pf_plan_check: cannot read %s\n", Path.c_str());
    return 2;
  }
  std::string Text;
  char Buf[4096];
  for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), F)) > 0;)
    Text.append(Buf, N);
  std::fclose(F);

  DiagnosticEngine DE;
  auto A = parsePlanArtifact(Text, DE);
  if (!A) {
    std::fprintf(stderr, "pf_plan_check: %s is invalid:\n%s", Path.c_str(),
                 DE.render().c_str());
    return 1;
  }
  if (serializePlanArtifact(*A) != Text) {
    std::fprintf(stderr,
                 "pf_plan_check: %s does not round-trip byte-identically\n",
                 Path.c_str());
    return 1;
  }
  if (!checkCoherent(*A))
    return 1;
  if (!WantDigest.empty() && A->Key.digest() != WantDigest) {
    std::fprintf(stderr,
                 "pf_plan_check: %s has content address %s, expected %s\n",
                 Path.c_str(), A->Key.digest().c_str(), WantDigest.c_str());
    return 1;
  }
  std::printf("%s: valid plan artifact (%zu segments, %zu decisions, key "
              "%s)\n",
              Path.c_str(), A->Plan.Segments.size(),
              A->Plan.Decisions.size(), A->Key.digest().c_str());
  return 0;
}
