//===- tools/pf_metrics_check.cpp - Exposition format validator -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates a Prometheus-style text exposition written by the driver's
/// `--metrics-out=<path>` flag, for CTest smoke tests and ci.sh tier 6
/// (the metrics sibling of pf_json_check):
///
///   pf_metrics_check [--min-quantile-metrics=N] <metrics.txt>
///
/// Checks, line by line:
///   - every non-comment line is `name[{labels}] value` with a finite
///     numeric value and a legal metric name ([a-zA-Z_:][a-zA-Z0-9_:]*);
///   - every sample is preceded by a `# TYPE` line for its family
///     (suffixes `_sum`/`_count`/`_min`/`_max` and label-only variants
///     bind to their base family);
///   - no family is declared by two TYPE lines;
///   - within a family, `quantile="Q"` samples appear with strictly
///     increasing Q and non-decreasing values (a histogram whose p99 sorts
///     below its p50 is corrupt, not just ugly).
///
/// `--min-quantile-metrics=N` additionally requires at least N summary
/// families carrying quantile samples — the acceptance bar for a run that
/// claims to export latency percentiles. Exit codes: 0 = valid,
/// 1 = invalid, 2 = usage error.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <map>
#include <set>
#include <string>

#include "obs/Json.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

bool validMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  auto isStart = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == ':';
  };
  if (!isStart(Name[0]))
    return false;
  for (char C : Name.substr(1))
    if (!isStart(C) && !(C >= '0' && C <= '9'))
      return false;
  return true;
}

/// Strips the conventional summary/window suffixes so samples bind to the
/// family their TYPE line declared (`foo_sum` belongs to family `foo`).
std::string familyOf(const std::string &Name,
                     const std::set<std::string> &Declared) {
  if (Declared.count(Name))
    return Name;
  for (const char *Suffix : {"_sum", "_count", "_min", "_max"}) {
    const size_t Len = std::strlen(Suffix);
    if (Name.size() > Len &&
        Name.compare(Name.size() - Len, Len, Suffix) == 0) {
      const std::string Base = Name.substr(0, Name.size() - Len);
      if (Declared.count(Base))
        return Base;
    }
  }
  return Name;
}

struct QuantileState {
  double LastQ = -1.0;
  double LastValue = 0.0;
  bool Any = false;
};

} // namespace

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  long MinQuantileMetrics = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--min-quantile-metrics=", 23) == 0) {
      char *End = nullptr;
      MinQuantileMetrics = std::strtol(Argv[I] + 23, &End, 10);
      if (!End || *End != '\0' || MinQuantileMetrics < 0) {
        std::fprintf(stderr, "error: --min-quantile-metrics expects a "
                             "non-negative integer\n");
        return 2;
      }
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
      return 2;
    } else
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr, "usage: pf_metrics_check "
                         "[--min-quantile-metrics=N] <metrics.txt>\n");
    return 2;
  }

  const auto Text = obs::readTextFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }

  std::set<std::string> Declared;
  std::map<std::string, QuantileState> Quantiles;
  size_t Samples = 0, LineNo = 0;
  auto fail = [&](const char *What, const std::string &Line) {
    std::fprintf(stderr, "error: %s:%zu: %s: %s\n", Path, LineNo, What,
                 Line.c_str());
    return 1;
  };

  size_t Pos = 0;
  while (Pos <= Text->size()) {
    size_t Eol = Text->find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text->size();
    const std::string Line = Text->substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      // Only `# TYPE <name> <type>` comments carry structure.
      if (!startsWith(Line, "# TYPE "))
        continue;
      const std::string Rest = Line.substr(7);
      const size_t Space = Rest.find(' ');
      if (Space == std::string::npos)
        return fail("malformed TYPE line", Line);
      const std::string Name = Rest.substr(0, Space);
      const std::string Type = Rest.substr(Space + 1);
      if (!validMetricName(Name))
        return fail("illegal metric name in TYPE line", Line);
      if (Type != "counter" && Type != "gauge" && Type != "summary" &&
          Type != "histogram" && Type != "untyped")
        return fail("unknown metric type", Line);
      if (!Declared.insert(Name).second)
        return fail("family declared twice", Line);
      continue;
    }

    // Sample line: name[{labels}] value
    size_t NameEnd = Line.find_first_of("{ ");
    if (NameEnd == std::string::npos)
      return fail("sample line without a value", Line);
    const std::string Name = Line.substr(0, NameEnd);
    if (!validMetricName(Name))
      return fail("illegal metric name", Line);

    std::string Labels;
    size_t ValueStart = NameEnd;
    if (Line[NameEnd] == '{') {
      const size_t Close = Line.find('}', NameEnd);
      if (Close == std::string::npos)
        return fail("unterminated label set", Line);
      Labels = Line.substr(NameEnd + 1, Close - NameEnd - 1);
      ValueStart = Close + 1;
    }
    if (ValueStart >= Line.size() || Line[ValueStart] != ' ')
      return fail("missing space before value", Line);
    const std::string ValueStr = Line.substr(ValueStart + 1);
    char *End = nullptr;
    const double Value = std::strtod(ValueStr.c_str(), &End);
    if (!End || *End != '\0' || ValueStr.empty())
      return fail("non-numeric sample value", Line);
    if (!std::isfinite(Value))
      return fail("non-finite sample value", Line);

    const std::string Family = familyOf(Name, Declared);
    if (!Declared.count(Family))
      return fail("sample precedes its TYPE line", Line);
    ++Samples;

    // Quantile discipline: strictly increasing quantile, non-decreasing
    // value within one family.
    const size_t QPos = Labels.find("quantile=\"");
    if (QPos != std::string::npos) {
      const size_t QStart = QPos + 10;
      const size_t QEnd = Labels.find('"', QStart);
      if (QEnd == std::string::npos)
        return fail("unterminated quantile label", Line);
      const double Q =
          std::strtod(Labels.substr(QStart, QEnd - QStart).c_str(), nullptr);
      if (Q < 0.0 || Q > 1.0)
        return fail("quantile outside [0, 1]", Line);
      QuantileState &S = Quantiles[Family];
      if (S.Any && Q <= S.LastQ)
        return fail("quantiles not strictly increasing", Line);
      if (S.Any && Value < S.LastValue)
        return fail("quantile values not monotone", Line);
      S.LastQ = Q;
      S.LastValue = Value;
      S.Any = true;
    }
  }

  if (Samples == 0) {
    std::fprintf(stderr, "error: %s: no samples\n", Path);
    return 1;
  }
  if (static_cast<long>(Quantiles.size()) < MinQuantileMetrics) {
    std::fprintf(stderr,
                 "error: %s: %zu quantile metric families, expected >= "
                 "%ld\n",
                 Path, Quantiles.size(), MinQuantileMetrics);
    return 1;
  }
  std::printf("%s: valid exposition, %zu families, %zu samples, %zu with "
              "quantiles\n",
              Path, Declared.size(), Samples, Quantiles.size());
  return 0;
}
