//===- tools/pf_trace_check.cpp - Serve request-trace validator -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates a `pimflow serve --trace-out` document, for the ci.sh serve
/// tracing tier and shell pipelines:
///
///   pf_trace_check trace.json
///   pf_trace_check --min-requests=8 trace.json
///
/// Runs the shared Chrome-trace semantic checks (obs/TraceCheck.h: field
/// presence, per-lane B/E nesting, flow-id resolution), then enforces the
/// serve request-lane laws on top (docs/INTERNALS.md section 15):
///
///  - every request lane (pid 3 tid = request id) opens exactly one root
///    `request` span — no more, no fewer;
///  - every root span carries a `trace_id` arg;
///  - with --min-requests=N, at least N distinct request lanes exist
///    (proof that sampling actually selected something).
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "obs/Json.h"
#include "obs/TraceCheck.h"

using namespace pf;

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  long MinRequests = -1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--min-requests=", 15) == 0) {
      char *End = nullptr;
      MinRequests = std::strtol(Argv[I] + 15, &End, 10);
      if (!End || *End || MinRequests < 0) {
        std::fprintf(stderr, "error: bad --min-requests value '%s'\n",
                     Argv[I] + 15);
        return 2;
      }
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
      return 2;
    } else
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: pf_trace_check [--min-requests=N] <trace.json>\n");
    return 2;
  }

  const auto Text = obs::readTextFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }
  std::string Error;
  const auto Doc = obs::JsonValue::parse(*Text, &Error);
  if (!Doc) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  obs::TraceCheckSummary Summary;
  if (!obs::checkChromeTrace(*Doc, Error, &Summary)) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  // Serve layer: one root `request` span per request lane, each with a
  // trace id.
  const obs::JsonValue *Events = Doc->find("traceEvents");
  std::map<long long, size_t> RootsPerLane;
  for (size_t I = 0; I < Events->Array.size(); ++I) {
    const obs::JsonValue &E = Events->Array[I];
    const obs::JsonValue *Ph = E.find("ph");
    const obs::JsonValue *Cat = E.find("cat");
    if (!Ph || Ph->Str != "B" || !Cat || !Cat->isString() ||
        Cat->Str != "serve.request")
      continue;
    const long long Tid =
        static_cast<long long>(E.numberOr("tid", -1.0));
    ++RootsPerLane[Tid];
    const obs::JsonValue *Args = E.find("args");
    const obs::JsonValue *TraceId =
        Args ? Args->find("trace_id") : nullptr;
    if (!TraceId || !TraceId->isString() || TraceId->Str.size() != 16) {
      std::fprintf(stderr,
                   "error: %s: traceEvents[%zu]: request root on tid %lld "
                   "lacks a 16-hex 'trace_id' arg\n",
                   Path, I, Tid);
      return 1;
    }
    if (static_cast<long long>(E.numberOr("pid", -1.0)) != 3) {
      std::fprintf(stderr,
                   "error: %s: traceEvents[%zu]: serve.request root off "
                   "the request process (pid 3)\n",
                   Path, I);
      return 1;
    }
  }
  for (const auto &[Tid, Count] : RootsPerLane)
    if (Count != 1) {
      std::fprintf(stderr,
                   "error: %s: request lane tid %lld has %zu root spans "
                   "(want exactly 1)\n",
                   Path, Tid, Count);
      return 1;
    }
  if (MinRequests >= 0 &&
      RootsPerLane.size() < static_cast<size_t>(MinRequests)) {
    std::fprintf(stderr,
                 "error: %s: %zu request lanes, want at least %ld\n", Path,
                 RootsPerLane.size(), MinRequests);
    return 1;
  }

  std::printf("%s: valid serve trace, %zu events, %zu request lanes, "
              "%zu span pairs, %zu flow chains\n",
              Path, Summary.Events, RootsPerLane.size(),
              Summary.PairedSpans, Summary.FlowChains);
  return 0;
}
