//===- tools/pf_json_check.cpp - Observability output validator -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a JSON file produced by the observability exporters and checks its
/// shape, for CTest smoke tests and shell pipelines:
///
///   pf_json_check --chrome trace.json   # Chrome trace: semantic checks
///   pf_json_check --stats stats.json    # stats dump: stats object present
///   pf_json_check file.json             # any well-formed JSON document
///
/// --chrome validates the trace semantically, not just syntactically
/// (obs/TraceCheck.h): every event must carry a string `ph` and numeric
/// `pid`/`tid`; non-metadata events need a non-negative `ts` and any
/// `dur` must be non-negative; per-lane `B`/`E` spans must nest (name-
/// matched, none left open); and every flow id must resolve to an
/// `s`/`f` pair. pf_trace_check adds the serve-specific request-lane
/// laws on top of the same checker.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/Json.h"
#include "obs/TraceCheck.h"

using namespace pf;

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  bool WantChrome = false, WantStats = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--chrome") == 0)
      WantChrome = true;
    else if (std::strcmp(Argv[I], "--stats") == 0)
      WantStats = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
      return 2;
    } else
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: pf_json_check [--chrome|--stats] <file.json>\n");
    return 2;
  }

  const auto Text = obs::readTextFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }
  std::string Error;
  const auto Doc = obs::JsonValue::parse(*Text, &Error);
  if (!Doc) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  if (WantChrome) {
    std::string CheckError;
    obs::TraceCheckSummary Summary;
    if (!obs::checkChromeTrace(*Doc, CheckError, &Summary)) {
      std::fprintf(stderr, "error: %s: %s\n", Path, CheckError.c_str());
      return 1;
    }
    std::printf("%s: valid Chrome trace, %zu events (%zu span pairs, "
                "%zu flow chains)\n",
                Path, Summary.Events, Summary.PairedSpans,
                Summary.FlowChains);
  }
  if (WantStats) {
    const obs::JsonValue *Stats = Doc->find("stats");
    if (!Stats || !Stats->isObject()) {
      std::fprintf(stderr, "error: %s: missing 'stats' object\n", Path);
      return 1;
    }
    std::printf("%s: valid stats dump, %zu stat fields\n", Path,
                Stats->Object.size());
  }
  if (!WantChrome && !WantStats)
    std::printf("%s: well-formed JSON\n", Path);
  return 0;
}
