//===- tools/pf_json_check.cpp - Observability output validator -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a JSON file produced by the observability exporters and checks its
/// shape, for CTest smoke tests and shell pipelines:
///
///   pf_json_check --chrome trace.json   # Chrome trace: semantic checks
///   pf_json_check --stats stats.json    # stats dump: stats object present
///   pf_json_check file.json             # any well-formed JSON document
///
/// --chrome validates the trace semantically, not just syntactically:
/// every event must carry a string `ph` and numeric `pid`/`tid`; duration
/// events additionally need a non-negative `ts`, and `dur` (when present)
/// must be non-negative. Metadata events (`ph == "M"`) are exempt from the
/// timestamp rule — the exporters emit them without one.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/Json.h"

using namespace pf;

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  bool WantChrome = false, WantStats = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--chrome") == 0)
      WantChrome = true;
    else if (std::strcmp(Argv[I], "--stats") == 0)
      WantStats = true;
    else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
      return 2;
    } else
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: pf_json_check [--chrome|--stats] <file.json>\n");
    return 2;
  }

  const auto Text = obs::readTextFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }
  std::string Error;
  const auto Doc = obs::JsonValue::parse(*Text, &Error);
  if (!Doc) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  if (WantChrome) {
    const obs::JsonValue *Events = Doc->find("traceEvents");
    if (!Events || !Events->isArray() || Events->Array.empty()) {
      std::fprintf(stderr,
                   "error: %s: missing or empty 'traceEvents' array\n",
                   Path);
      return 1;
    }
    for (size_t I = 0; I < Events->Array.size(); ++I) {
      const obs::JsonValue &E = Events->Array[I];
      auto fail = [&](const char *What) {
        std::fprintf(stderr, "error: %s: traceEvents[%zu]: %s\n", Path, I,
                     What);
        return 1;
      };
      if (!E.isObject())
        return fail("not an object");
      const obs::JsonValue *Ph = E.find("ph");
      if (!Ph || !Ph->isString())
        return fail("missing string 'ph'");
      const obs::JsonValue *Pid = E.find("pid");
      if (!Pid || !Pid->isNumber())
        return fail("missing numeric 'pid'");
      const obs::JsonValue *Tid = E.find("tid");
      if (!Tid || !Tid->isNumber())
        return fail("missing numeric 'tid'");
      const obs::JsonValue *Ts = E.find("ts");
      if (Ph->Str != "M") {
        // Non-metadata events are on a timeline and need a timestamp.
        if (!Ts || !Ts->isNumber())
          return fail("missing numeric 'ts'");
        if (Ts->Number < 0)
          return fail("negative 'ts'");
      } else if (Ts && Ts->isNumber() && Ts->Number < 0)
        return fail("negative 'ts'");
      const obs::JsonValue *Dur = E.find("dur");
      if (Dur && Dur->isNumber() && Dur->Number < 0)
        return fail("negative 'dur'");
    }
    std::printf("%s: valid Chrome trace, %zu events\n", Path,
                Events->Array.size());
  }
  if (WantStats) {
    const obs::JsonValue *Stats = Doc->find("stats");
    if (!Stats || !Stats->isObject()) {
      std::fprintf(stderr, "error: %s: missing 'stats' object\n", Path);
      return 1;
    }
    std::printf("%s: valid stats dump, %zu stat fields\n", Path,
                Stats->Object.size());
  }
  if (!WantChrome && !WantStats)
    std::printf("%s: well-formed JSON\n", Path);
  return 0;
}
