#!/usr/bin/env bash
#===- tools/ci.sh - tier-1 verification + checked/sanitized trees ---------===#
#
# Part of the PIMFlow reproduction, released under the MIT license.
#
# Three passes:
#   1. The tier-1 gate: configure, build, and run the full test suite in
#      build/ (exactly what ROADMAP.md specifies).
#   2. A PIMFLOW_CHECKED tree in build-checked/ running the full suite with
#      the graph verifier active at every pass boundary (PF_VERIFY_PASS in
#      ir/Verifier.h), so an invariant-breaking transform fails in CI even
#      when no test inspects the intermediate graph.
#   3. A ThreadSanitizer tree in build-tsan/ running the concurrency-facing
#      suites (thread pool, profiler, search) to catch data races in the
#      parallel candidate-profiling pre-pass.
#   4. The chaos tier: the seeded fault-schedule suite (tests/chaos/) in the
#      tier-1 tree, then again under TSan. The seeds are fixed inside the
#      tests, so a failure always names a reproducible schedule; per-test
#      ctest TIMEOUT properties turn any hang into a loud failure.
#   5. The perf smoke tier: regenerate the bench JSON dumps (toy +
#      resnet-18, deterministic simulated metrics only) and perf reports,
#      then gate them against the checked-in bench/baselines/ with
#      pf_perf_diff at a generous ±25% threshold, and prove the gate
#      itself trips on a perturbed report.
#   6. The telemetry tier: a faulted chaos-seed run exporting the
#      Prometheus metrics exposition (validated by pf_metrics_check, with
#      quantile histograms required) and a flight-recorder dump (asserted
#      non-empty and carrying the recovery ladder's events), then an
#      unrecovered-fault run (--no-recovery) proving the auto-dump fires
#      on the failure path.
#   7. The plan-artifact tier: compile -> replay determinism (a replayed
#      plan reproduces the fresh run's execution line, skips the search,
#      and hits the plan cache on a recompile), then the corruption
#      matrix (truncation, bit flip, version skew, wrong-model replay),
#      each rejected non-zero with the right diagnostic slug.
#   8. The serve tier: a seeded mixed-model `pimflow serve` run whose
#      summary must be byte-identical across --jobs values AND match the
#      committed golden (outcomes are decided in virtual time, never by
#      worker races), with the request-latency p50/p99 rows gated against
#      bench/baselines/BENCH_serve.json by pf_perf_diff and the serve.*
#      metrics exposition validated by pf_metrics_check.
#   9. The chaos-under-serve tier: the seeded (load spec x fault timeline)
#      matrix in tests/serve_chaos/ (conservation, quarantine exclusion,
#      breaker lifecycle), then a CLI run with mid-stream channel outages,
#      deadlines, and a tight retry budget whose summary must stay
#      byte-identical across --jobs values while the breaker demonstrably
#      trips, probes, and re-admits; plus a tight-deadline burst proving
#      queued expiries shed and late completions classify.
#  10. The memory/UB tier: the serve + runtime resilience suites rebuilt
#      and re-run under AddressSanitizer and UndefinedBehaviorSanitizer
#      (PIMFLOW_SANITIZE=address|undefined; UBSan findings are fatal).
#  11. The request-tracing tier: a 200-request chaos serve run with
#      --trace-out + --trace-sample=tail whose Chrome trace must be
#      byte-identical across --jobs values, pf_trace_check-clean (span
#      nesting, flow resolution, one root per lane), and must carry shed,
#      deadline-missed, fault, and breaker events; then `pimflow report
#      --request=` on a deadline-missed id must render its segment
#      breakdown; finally the tracing suites re-run under TSan.
#
# Usage: tools/ci.sh [jobs]   (jobs defaults to nproc)
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 2: full suite with per-pass graph verification =="
cmake -B build-checked -S . -DPIMFLOW_CHECKED=ON
cmake --build build-checked -j "$JOBS"
ctest --test-dir build-checked --output-on-failure -j "$JOBS"

echo "== tier 3: ThreadSanitizer on the concurrency-facing suites =="
cmake -B build-tsan -S . -DPIMFLOW_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" \
  --target support_test search_test obs_test serve_test
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|Profiler|SearchEngine|SearchDeterminism|AlgorithmDp|LayerExtract|FlightRecorder|MetricsRegistry|LogLinearHistogram|SlidingWindow|PlanArtifact|PlanCache|PlanCorruption|SessionReentrancy|ChannelAllocator|ChannelPressure'

echo "== tier 4: chaos fault-injection suite (fixed seeds), then under TSan =="
ctest --test-dir build --output-on-failure -j "$JOBS" -R 'Chaos'
cmake --build build-tsan -j "$JOBS" --target chaos_test
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R 'Chaos'

echo "== tier 5: perf smoke — bench + report regression gate =="
PERF_DIR=build/perf-smoke
mkdir -p "$PERF_DIR"
PIMFLOW_BENCH_JSON="$PERF_DIR/BENCH_fig09_main.json" \
  ./build/bench/bench_fig09_main toy resnet-18 > /dev/null
PIMFLOW_BENCH_JSON="$PERF_DIR/BENCH_fig10_layerwise.json" \
  ./build/bench/bench_fig10_layerwise toy resnet-18 > /dev/null
PIMFLOW_BENCH_JSON="$PERF_DIR/BENCH_micro.json" \
  ./build/bench/bench_micro --no-wall > /dev/null
for B in BENCH_fig09_main BENCH_fig10_layerwise BENCH_micro; do
  ./build/tools/pf_perf_diff --threshold=0.25 \
    "bench/baselines/$B.json" "$PERF_DIR/$B.json"
done
for NET in toy resnet-18; do
  ./build/tools/pimflow -m=run -n="$NET" --dir="$PERF_DIR" \
    --perf-report="$PERF_DIR/$NET.perf.json" > /dev/null
  # A report never regresses against itself...
  ./build/tools/pf_perf_diff --threshold=0.25 \
    "$PERF_DIR/$NET.perf.json" "$PERF_DIR/$NET.perf.json" > /dev/null
done
# ...and the gate must actually trip on a >threshold perturbation.
sed 's/"end_to_end_ns":/"end_to_end_ns":9e99, "was_end_to_end_ns":/' \
  "$PERF_DIR/toy.perf.json" > "$PERF_DIR/toy.perf.perturbed.json"
if ./build/tools/pf_perf_diff --threshold=0.25 \
  "$PERF_DIR/toy.perf.json" "$PERF_DIR/toy.perf.perturbed.json" \
  > /dev/null; then
  echo "error: pf_perf_diff did not flag a perturbed report" >&2
  exit 1
fi

echo "== tier 6: telemetry — metrics exposition + flight recorder =="
TEL_DIR=build/telemetry-smoke
mkdir -p "$TEL_DIR"
# A faulted (recovered) chaos run exporting both telemetry artifacts.
./build/tools/pimflow -m=run -n=toy --dir="$TEL_DIR" \
  --faults=chaos --fault-seed=7 \
  --metrics-out="$TEL_DIR/toy.metrics.txt" \
  --flight-dump="$TEL_DIR/toy.flight.txt" \
  --perf-report="$TEL_DIR/toy.telemetry.perf.json" > /dev/null
./build/tools/pf_metrics_check --min-quantile-metrics=3 \
  "$TEL_DIR/toy.metrics.txt"
./build/tools/pf_json_check "$TEL_DIR/toy.telemetry.perf.json" > /dev/null
./build/tools/pimflow report --metrics \
  "$TEL_DIR/toy.telemetry.perf.json" > /dev/null
if ! [ -s "$TEL_DIR/toy.flight.txt" ]; then
  echo "error: flight dump missing or empty" >&2
  exit 1
fi
grep -q '# pimflow flight recorder dump' "$TEL_DIR/toy.flight.txt"
# The faulted run's trace must replay the recovery ladder, not just exist.
grep -qE 'kind=(retry|channel-remap|floor-fallback|node-fallback|channel-dead|watchdog-trip)' \
  "$TEL_DIR/toy.flight.txt"
# An unrecovered fault (--no-recovery lets a dead channel reach the
# engine) must exit non-zero AND leave the flight trace behind.
./build/tools/pimflow -m=solve -n=toy --dir="$TEL_DIR" > /dev/null
rm -f "$TEL_DIR/toy.crash.txt"
if ./build/tools/pimflow -m=run -n=toy \
  --graph="$TEL_DIR/toy.pimflow.graph" --dir="$TEL_DIR" \
  --faults=dead:0 --no-recovery \
  --flight-dump="$TEL_DIR/toy.crash.txt" > /dev/null 2>&1; then
  echo "error: --no-recovery run with a dead channel did not fail" >&2
  exit 1
fi
if ! [ -s "$TEL_DIR/toy.crash.txt" ]; then
  echo "error: unrecovered fault did not leave a flight dump" >&2
  exit 1
fi
grep -q 'kind=channel-dead' "$TEL_DIR/toy.crash.txt"
grep -q 'kind=exec-error' "$TEL_DIR/toy.crash.txt"

echo "== tier 7: plan artifacts — compile/replay determinism + corruption matrix =="
PLAN_DIR=build/plan-smoke
rm -rf "$PLAN_DIR"
mkdir -p "$PLAN_DIR"
# Compile once, validate the artifact, and prove it matches the committed
# golden byte for byte.
./build/tools/pimflow compile toy --dir="$PLAN_DIR" \
  --plan-out="$PLAN_DIR/toy.plan" > /dev/null
./build/tools/pf_plan_check "$PLAN_DIR/toy.plan" > /dev/null
cmp "$PLAN_DIR/toy.plan" tools/testdata/toy.plan
# Replay determinism: the replayed run's execution line is byte-identical
# to a fresh compile-and-run of the same model.
./build/tools/pimflow -m=run -n=toy --dir="$PLAN_DIR" \
  | grep 'us end-to-end' > "$PLAN_DIR/fresh.out"
./build/tools/pimflow run toy --dir="$PLAN_DIR" \
  --plan="$PLAN_DIR/toy.plan" \
  --metrics-out="$PLAN_DIR/replay.metrics.txt" \
  | grep 'us end-to-end' > "$PLAN_DIR/replay.out"
cmp "$PLAN_DIR/fresh.out" "$PLAN_DIR/replay.out"
# The replay really skipped the search: its metrics carry the replay
# counter and not a single search/profiler counter.
grep -q '^pimflow_plan_replays 1' "$PLAN_DIR/replay.metrics.txt"
if grep -qE '^pimflow_(search|profiler)_' "$PLAN_DIR/replay.metrics.txt"; then
  echo "error: replay run bumped search/profiler counters" >&2
  exit 1
fi
# The content-addressed cache: a second compile of the same key hits.
./build/tools/pimflow compile toy --dir="$PLAN_DIR" \
  --plan-cache-dir="$PLAN_DIR/cache" > /dev/null
./build/tools/pimflow compile toy --dir="$PLAN_DIR" \
  --plan-cache-dir="$PLAN_DIR/cache" \
  --metrics-out="$PLAN_DIR/cached.metrics.txt" > /dev/null
grep -q '^pimflow_plan_cache_hit 1' "$PLAN_DIR/cached.metrics.txt"
# Corruption matrix: every damaged artifact is rejected non-zero with the
# right diagnostic slug, never executed and never silently re-searched.
reject() { # <slug> <artifact>
  if ./build/tools/pimflow run toy --dir="$PLAN_DIR" --plan="$2" \
    > /dev/null 2> "$PLAN_DIR/reject.err"; then
    echo "error: corrupted artifact $2 was accepted" >&2
    exit 1
  fi
  grep -q "$1" "$PLAN_DIR/reject.err" || {
    echo "error: $2 rejected without a $1 diagnostic:" >&2
    cat "$PLAN_DIR/reject.err" >&2
    exit 1
  }
}
head -c 200 "$PLAN_DIR/toy.plan" > "$PLAN_DIR/truncated.plan"
reject 'plan\.corrupt' "$PLAN_DIR/truncated.plan"
sed '2s/./X/' "$PLAN_DIR/toy.plan" > "$PLAN_DIR/flipped.plan"
reject 'plan\.corrupt' "$PLAN_DIR/flipped.plan"
sed '1s/ v1 / v99 /' "$PLAN_DIR/toy.plan" > "$PLAN_DIR/skewed.plan"
reject 'plan\.version' "$PLAN_DIR/skewed.plan"
if ./build/tools/pimflow run mnasnet-1.0 --dir="$PLAN_DIR" \
  --plan="$PLAN_DIR/toy.plan" > /dev/null 2> "$PLAN_DIR/mismatch.err"; then
  echo "error: wrong-model replay was accepted" >&2
  exit 1
fi
grep -q 'plan\.mismatch' "$PLAN_DIR/mismatch.err"

echo "== tier 8: serve — deterministic multi-tenant smoke + latency gate =="
SERVE_DIR=build/serve-smoke
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
SERVE_SPEC='count:24,seed:7,mean-gap-us:150,batch:1|4'
# The full serve run: golden summary, bench rows, serve report, metrics.
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests="$SERVE_SPEC" --max-inflight=3 --channel-pool=24 --jobs=1 \
  --summary-out="$SERVE_DIR/serve.j1.txt" \
  --bench-json="$SERVE_DIR/BENCH_serve.json" \
  --perf-report="$SERVE_DIR/serve.perf.json" \
  --metrics-out="$SERVE_DIR/serve.metrics.txt" > /dev/null
# Reentrancy determinism: more worker threads change nothing, byte for byte.
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests="$SERVE_SPEC" --max-inflight=3 --channel-pool=24 --jobs=4 \
  --summary-out="$SERVE_DIR/serve.j4.txt" > /dev/null
cmp "$SERVE_DIR/serve.j1.txt" "$SERVE_DIR/serve.j4.txt"
cmp "$SERVE_DIR/serve.j1.txt" tools/testdata/serve_summary.golden
# The channel-pressure mix must actually exercise the ladder: full grants,
# degraded grants, and GPU-floor fallbacks all appear in the golden run.
grep -q 'outcome=served'   "$SERVE_DIR/serve.j1.txt"
grep -q 'outcome=degraded' "$SERVE_DIR/serve.j1.txt"
grep -q 'outcome=floor'    "$SERVE_DIR/serve.j1.txt"
# Request-latency regression gate over the serve/latency_p50|p99 rows.
./build/tools/pf_perf_diff --threshold=0.25 \
  bench/baselines/BENCH_serve.json "$SERVE_DIR/BENCH_serve.json"
# The serve report is valid schema-v3 JSON of the serve kind.
./build/tools/pf_json_check "$SERVE_DIR/serve.perf.json" > /dev/null
grep -q '"kind":"pimflow-serve-report"' "$SERVE_DIR/serve.perf.json"
# And the serve.* families made it into the Prometheus exposition.
./build/tools/pf_metrics_check --min-quantile-metrics=3 \
  "$SERVE_DIR/serve.metrics.txt"
grep -q '^pimflow_serve_requests 24' "$SERVE_DIR/serve.metrics.txt"

echo "== tier 9: chaos-under-serve — deadlines, breakers, fault timelines =="
ctest --test-dir build --output-on-failure -j "$JOBS" \
  -R 'ServeChaos|FaultTimeline|ChannelScoreboard'
CHAOS_DIR=build/serve-chaos-smoke
rm -rf "$CHAOS_DIR"
mkdir -p "$CHAOS_DIR"
CHAOS_SPEC='count:24,seed:7,mean-gap-us:50,batch:1|4,deadline-us:4000'
CHAOS_FAULTS='dead@200..700:0,dead@900..1600:0'
# Mid-stream outages under load: outcomes are still decided entirely in
# virtual time, so the summary is byte-identical across worker counts.
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests="$CHAOS_SPEC" --max-inflight=3 --max-queue=2 \
  --channel-pool=12 --jobs=1 \
  --faults="$CHAOS_FAULTS" --breaker-threshold=1 \
  --breaker-cooldown-us=100 --retry-budget=8 \
  --summary-out="$CHAOS_DIR/chaos.j1.txt" \
  --metrics-out="$CHAOS_DIR/chaos.metrics.txt" \
  --perf-report="$CHAOS_DIR/chaos.perf.json" > /dev/null
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests="$CHAOS_SPEC" --max-inflight=3 --max-queue=2 \
  --channel-pool=12 --jobs=4 \
  --faults="$CHAOS_FAULTS" --breaker-threshold=1 \
  --breaker-cooldown-us=100 --retry-budget=8 \
  --summary-out="$CHAOS_DIR/chaos.j4.txt" > /dev/null
cmp "$CHAOS_DIR/chaos.j1.txt" "$CHAOS_DIR/chaos.j4.txt"
# The outages actually bit: mid-run interrupts retried onto live channels,
# and the flapping channel tripped its breaker and was later re-admitted.
grep -q 'reason=fault-retry' "$CHAOS_DIR/chaos.j1.txt"
grep -qE 'resilience: interrupts=[1-9][0-9]* retries=[1-9]' \
  "$CHAOS_DIR/chaos.j1.txt"
grep -qE 'trips=[1-9]' "$CHAOS_DIR/chaos.j1.txt"
grep -qE 'readmits=[1-9]' "$CHAOS_DIR/chaos.j1.txt"
grep -q 'shed_reasons: ' "$CHAOS_DIR/chaos.j1.txt"
grep -q 'floor_reasons: ' "$CHAOS_DIR/chaos.j1.txt"
# Breaker counters reach the Prometheus exposition and the serve report.
./build/tools/pf_metrics_check --min-quantile-metrics=3 \
  "$CHAOS_DIR/chaos.metrics.txt"
grep -qE '^pimflow_serve_breaker_trips [1-9]' "$CHAOS_DIR/chaos.metrics.txt"
grep -qE '^pimflow_serve_fault_interrupts [1-9]' \
  "$CHAOS_DIR/chaos.metrics.txt"
./build/tools/pf_json_check "$CHAOS_DIR/chaos.perf.json" > /dev/null
grep -qE '"breaker_trips":[1-9]' "$CHAOS_DIR/chaos.perf.json"
# A tight deadline under burst load: queued expiries shed before they run,
# late completions classify as missed, and on-time ones still count met.
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests='count:32,seed:9,mean-gap-us:2,batch:1|4,deadline-us:30' \
  --max-inflight=2 --max-queue=4 --channel-pool=24 --jobs=1 \
  --summary-out="$CHAOS_DIR/deadline.txt" > /dev/null
grep -qE 'shed_reasons: queue_full=[0-9]+ deadline_expired=[1-9]' \
  "$CHAOS_DIR/deadline.txt"
grep -qE 'deadline: met=[1-9][0-9]* missed_run=[1-9][0-9]* expired_queued=[1-9]' \
  "$CHAOS_DIR/deadline.txt"

echo "== tier 10: ASan + UBSan on the serve/runtime resilience suites =="
cmake -B build-asan -S . -DPIMFLOW_SANITIZE=address
cmake --build build-asan -j "$JOBS" \
  --target serve_test serve_chaos_test engine_test pim_test
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'Server|ServeChaos|Channel|LoadGen|Fault|Session|Scoreboard'
cmake -B build-ubsan -S . -DPIMFLOW_SANITIZE=undefined
cmake --build build-ubsan -j "$JOBS" \
  --target serve_test serve_chaos_test engine_test pim_test
ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
  -R 'Server|ServeChaos|Channel|LoadGen|Fault|Session|Scoreboard'

echo "== tier 11: request tracing — deterministic tail-sampled serve traces =="
TRACE_DIR=build/trace-smoke
rm -rf "$TRACE_DIR"
mkdir -p "$TRACE_DIR"
TRACE_SPEC='count:200,seed:7,mean-gap-us:20,batch:1|4,deadline-us:800'
TRACE_FAULTS='dead@200..700:0,dead@900..1600:0'
# A 200-request burst with mid-stream outages: the tail policy must keep
# every shed/missed/faulted request plus the slowest completions.
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests="$TRACE_SPEC" --max-inflight=3 --max-queue=2 \
  --channel-pool=12 --jobs=1 \
  --faults="$TRACE_FAULTS" --breaker-threshold=1 \
  --breaker-cooldown-us=100 --retry-budget=8 \
  --trace-sample=tail --trace-out="$TRACE_DIR/trace.j1.json" \
  --perf-report="$TRACE_DIR/trace.perf.json" \
  --summary-out="$TRACE_DIR/trace.summary.txt" > /dev/null
# The trace is built from virtual-time records alone, so more workers
# change nothing, byte for byte.
./build/tools/pimflow serve toy mobilenet-v2 \
  --requests="$TRACE_SPEC" --max-inflight=3 --max-queue=2 \
  --channel-pool=12 --jobs=4 \
  --faults="$TRACE_FAULTS" --breaker-threshold=1 \
  --breaker-cooldown-us=100 --retry-budget=8 \
  --trace-sample=tail --trace-out="$TRACE_DIR/trace.j4.json" > /dev/null
cmp "$TRACE_DIR/trace.j1.json" "$TRACE_DIR/trace.j4.json"
# Structural validity: Chrome field rules, balanced span nesting, resolved
# flow ids, exactly one root span per request lane.
./build/tools/pf_json_check --chrome "$TRACE_DIR/trace.j1.json" > /dev/null
./build/tools/pf_trace_check --min-requests=100 "$TRACE_DIR/trace.j1.json"
# The tail classes are all present in the sampled trace: shed instants,
# deadline-missed roots, fault interrupts, and breaker lifecycle events.
grep -q '"cat":"serve.shed"'    "$TRACE_DIR/trace.j1.json"
grep -q '"deadline":"missed"'   "$TRACE_DIR/trace.j1.json"
grep -q '"cat":"serve.fault"'   "$TRACE_DIR/trace.j1.json"
grep -q '"cat":"serve.breaker"' "$TRACE_DIR/trace.j1.json"
grep -q '"cat":"serve.flow"'    "$TRACE_DIR/trace.j1.json"
# Drill into one deadline-missed request: the report renderer must break
# its latency into queue-wait + exec segments with the exec-phase split.
MISSED_ID=$(grep -o '{"id":[0-9]*,[^{]*"deadline":"missed"' \
  "$TRACE_DIR/trace.perf.json" | head -1 | sed 's/{"id":\([0-9]*\),.*/\1/')
if [ -z "$MISSED_ID" ]; then
  echo "error: no deadline-missed request in the trace report" >&2
  exit 1
fi
./build/tools/pimflow report --request="$MISSED_ID" \
  "$TRACE_DIR/trace.perf.json" > "$TRACE_DIR/request.txt"
grep -q 'queue-wait'       "$TRACE_DIR/request.txt"
grep -q 'deadline missed'  "$TRACE_DIR/request.txt"
grep -q 'exec-phase'       "$TRACE_DIR/request.txt"
# The tracing suites race-free under TSan (tree built in tier 3).
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'RequestTrace|TraceCheck'

echo "== ci.sh: all passes green =="
