#!/usr/bin/env bash
#===- tools/ci.sh - tier-1 verification + checked/sanitized trees ---------===#
#
# Part of the PIMFlow reproduction, released under the MIT license.
#
# Three passes:
#   1. The tier-1 gate: configure, build, and run the full test suite in
#      build/ (exactly what ROADMAP.md specifies).
#   2. A PIMFLOW_CHECKED tree in build-checked/ running the full suite with
#      the graph verifier active at every pass boundary (PF_VERIFY_PASS in
#      ir/Verifier.h), so an invariant-breaking transform fails in CI even
#      when no test inspects the intermediate graph.
#   3. A ThreadSanitizer tree in build-tsan/ running the concurrency-facing
#      suites (thread pool, profiler, search) to catch data races in the
#      parallel candidate-profiling pre-pass.
#   4. The chaos tier: the seeded fault-schedule suite (tests/chaos/) in the
#      tier-1 tree, then again under TSan. The seeds are fixed inside the
#      tests, so a failure always names a reproducible schedule; per-test
#      ctest TIMEOUT properties turn any hang into a loud failure.
#   5. The perf smoke tier: regenerate the bench JSON dumps (toy +
#      resnet-18, deterministic simulated metrics only) and perf reports,
#      then gate them against the checked-in bench/baselines/ with
#      pf_perf_diff at a generous ±25% threshold, and prove the gate
#      itself trips on a perturbed report.
#
# Usage: tools/ci.sh [jobs]   (jobs defaults to nproc)
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 2: full suite with per-pass graph verification =="
cmake -B build-checked -S . -DPIMFLOW_CHECKED=ON
cmake --build build-checked -j "$JOBS"
ctest --test-dir build-checked --output-on-failure -j "$JOBS"

echo "== tier 3: ThreadSanitizer on the concurrency-facing suites =="
cmake -B build-tsan -S . -DPIMFLOW_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target support_test search_test
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|Profiler|SearchEngine|SearchDeterminism|AlgorithmDp|LayerExtract'

echo "== tier 4: chaos fault-injection suite (fixed seeds), then under TSan =="
ctest --test-dir build --output-on-failure -j "$JOBS" -R 'Chaos'
cmake --build build-tsan -j "$JOBS" --target chaos_test
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R 'Chaos'

echo "== tier 5: perf smoke — bench + report regression gate =="
PERF_DIR=build/perf-smoke
mkdir -p "$PERF_DIR"
PIMFLOW_BENCH_JSON="$PERF_DIR/BENCH_fig09_main.json" \
  ./build/bench/bench_fig09_main toy resnet-18 > /dev/null
PIMFLOW_BENCH_JSON="$PERF_DIR/BENCH_fig10_layerwise.json" \
  ./build/bench/bench_fig10_layerwise toy resnet-18 > /dev/null
PIMFLOW_BENCH_JSON="$PERF_DIR/BENCH_micro.json" \
  ./build/bench/bench_micro --no-wall > /dev/null
for B in BENCH_fig09_main BENCH_fig10_layerwise BENCH_micro; do
  ./build/tools/pf_perf_diff --threshold=0.25 \
    "bench/baselines/$B.json" "$PERF_DIR/$B.json"
done
for NET in toy resnet-18; do
  ./build/tools/pimflow -m=run -n="$NET" --dir="$PERF_DIR" \
    --perf-report="$PERF_DIR/$NET.perf.json" > /dev/null
  # A report never regresses against itself...
  ./build/tools/pf_perf_diff --threshold=0.25 \
    "$PERF_DIR/$NET.perf.json" "$PERF_DIR/$NET.perf.json" > /dev/null
done
# ...and the gate must actually trip on a >threshold perturbation.
sed 's/"end_to_end_ns":/"end_to_end_ns":9e99, "was_end_to_end_ns":/' \
  "$PERF_DIR/toy.perf.json" > "$PERF_DIR/toy.perf.perturbed.json"
if ./build/tools/pf_perf_diff --threshold=0.25 \
  "$PERF_DIR/toy.perf.json" "$PERF_DIR/toy.perf.perturbed.json" \
  > /dev/null; then
  echo "error: pf_perf_diff did not flag a perturbed report" >&2
  exit 1
fi

echo "== ci.sh: all passes green =="
